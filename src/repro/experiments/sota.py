"""Table 7: bipartite matching vs the state-of-the-art stand-ins.

The paper pits UMC over schema-agnostic TF-IDF cosine graphs (the
best n-gram model and threshold per dataset) against ZeroER
(unsupervised) and DITTO (supervised deep learning) on D2-D5.  This
driver reproduces the comparison with the offline stand-ins of
:mod:`repro.baselines`:

* UMC sweeps the TF-IDF cosine graphs of every n-gram model and keeps
  the best (model, threshold) pair, exactly the two free parameters
  the paper tunes;
* the ZeroER-like matcher runs unsupervised on the same graphs;
* the learned matcher trains on half the ground truth (DITTO's
  labelled-data advantage) and is evaluated on the full task.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.learned import LearnedMatcher, stack_feature_matrices
from repro.baselines.zeroer_like import ZeroERLikeMatcher
from repro.datasets.catalog import dataset_spec
from repro.datasets.generator import generate_dataset
from repro.evaluation.metrics import evaluate_pairs
from repro.evaluation.sweep import threshold_sweep
from repro.matching import UniqueMappingClustering
from repro.pipeline.graph_builder import matrix_to_graph
from repro.pipeline.similarity_functions import (
    NGRAM_MODELS,
    SimilarityFunctionSpec,
    compute_similarity_matrix,
)

__all__ = ["SotaComparison", "run_sota_comparison"]

#: The paper's Table 7 datasets.
TABLE7_DATASETS = ("d2", "d3", "d4", "d5")


@dataclass(frozen=True)
class SotaComparison:
    """One Table 7 row."""

    dataset: str
    zeroer_f1: float
    learned_f1: float
    umc_f1: float
    umc_model: str  # best n-gram model, e.g. "char2"
    umc_threshold: float


def _tfidf_cosine_spec(unit: str, n: int) -> SimilarityFunctionSpec:
    return SimilarityFunctionSpec(
        family="schema_agnostic_syntactic",
        details={
            "model": "vector",
            "unit": unit,
            "n": n,
            "measure": "cosine_tfidf",
        },
        name=f"sa-syn:vec:{unit}{n}:cosine_tfidf",
    )


def run_sota_comparison(
    datasets: tuple[str, ...] = TABLE7_DATASETS,
    scale: float | None = None,
    max_pairs: int | None = None,
    seed: int = 42,
    ngram_models: tuple[tuple[str, int], ...] = NGRAM_MODELS,
    training_fraction: float = 0.5,
) -> list[SotaComparison]:
    """Run the Table 7 comparison on the given dataset profiles."""
    rows: list[SotaComparison] = []
    for code in datasets:
        dataset = generate_dataset(
            dataset_spec(code, scale=scale, max_pairs=max_pairs), seed=seed
        )
        graphs = {}
        for unit, n in ngram_models:
            matrix = compute_similarity_matrix(
                dataset, _tfidf_cosine_spec(unit, n)
            )
            graphs[f"{unit}{n}"] = matrix_to_graph(
                matrix, name=f"{code}:{unit}{n}:cosine_tfidf"
            )

        # UMC: best (model, threshold) pair over the TF-IDF cosine graphs.
        best_f1, best_model, best_threshold = 0.0, "", 0.0
        umc = UniqueMappingClustering()
        for model, graph in graphs.items():
            sweep = threshold_sweep(umc, graph, dataset.ground_truth)
            if sweep.best_scores.f_measure > best_f1:
                best_f1 = sweep.best_scores.f_measure
                best_model = model
                best_threshold = sweep.best_threshold

        # ZeroER-like: unsupervised on the same family of graphs; it
        # gets the same model-selection freedom (best graph by F1).
        zeroer_f1 = 0.0
        for graph in graphs.values():
            result = ZeroERLikeMatcher(seed=seed).match(graph, 0.0)
            scores = evaluate_pairs(result.pairs, dataset.ground_truth)
            zeroer_f1 = max(zeroer_f1, scores.f_measure)

        # Learned: trains on half the matches over stacked features.
        features = stack_feature_matrices(list(graphs.values()))
        matches = sorted(dataset.ground_truth)
        n_train = max(1, int(len(matches) * training_fraction))
        training = set(matches[:n_train])
        learned = LearnedMatcher(seed=seed).fit(features, training)
        predicted = learned.predict(features)
        learned_scores = evaluate_pairs(
            predicted.pairs, dataset.ground_truth
        )

        rows.append(
            SotaComparison(
                dataset=code,
                zeroer_f1=zeroer_f1,
                learned_f1=learned_scores.f_measure,
                umc_f1=best_f1,
                umc_model=best_model,
                umc_threshold=best_threshold,
            )
        )
    return rows
