"""Optimal-threshold analyses: Table 8, Table 9 and Figure 9.

The optimal similarity threshold is the paper's single most important
configuration parameter; these analyses reproduce its distribution
per algorithm and input family (Table 8 with the Pearson correlation
to the normalized graph size), its per-dataset averages (Table 9) and
the cross-algorithm correlation matrices (Figure 9).  Inputs come from
the compiled-graph sweep engine, whose per-threshold results are
bit-identical to the legacy per-call path — the threshold statistics
here are unaffected by how (or how parallel) the sweeps ran.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.stats import pearson_correlation
from repro.experiments.runner import GraphRunResult
from repro.matching.registry import PAPER_ALGORITHM_CODES

__all__ = [
    "ThresholdStats",
    "threshold_stats",
    "threshold_by_dataset",
    "threshold_correlations",
]


@dataclass(frozen=True)
class ThresholdStats:
    """A Table 8 row: threshold distribution of one algorithm."""

    algorithm: str
    family: str
    mean: float
    std: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    correlation_with_size: float
    n_graphs: int


def threshold_stats(
    results: list[GraphRunResult],
    codes: tuple[str, ...] = PAPER_ALGORITHM_CODES,
) -> dict[str, list[ThresholdStats]]:
    """Table 8: per family, the threshold distribution per algorithm."""
    families = sorted({r.family for r in results})
    table: dict[str, list[ThresholdStats]] = {}
    for family in families:
        group = [r for r in results if r.family == family]
        rows = []
        for code in codes:
            thresholds = np.array([r.best_threshold(code) for r in group])
            sizes = np.array([r.normalized_size for r in group])
            quartiles = np.quantile(thresholds, [0.25, 0.5, 0.75])
            rows.append(
                ThresholdStats(
                    algorithm=code,
                    family=family,
                    mean=float(thresholds.mean()),
                    std=float(thresholds.std()),
                    minimum=float(thresholds.min()),
                    q1=float(quartiles[0]),
                    median=float(quartiles[1]),
                    q3=float(quartiles[2]),
                    maximum=float(thresholds.max()),
                    correlation_with_size=pearson_correlation(
                        thresholds, sizes
                    ),
                    n_graphs=len(group),
                )
            )
        table[family] = rows
    return table


def threshold_by_dataset(
    results: list[GraphRunResult],
    codes: tuple[str, ...] = PAPER_ALGORITHM_CODES,
) -> dict[tuple[str, str], dict[str, tuple[float, float]]]:
    """Table 9: mean ± std threshold per (family, dataset) per algorithm.

    Returns ``{(family, dataset): {code: (mean, std)}}``.
    """
    table: dict[tuple[str, str], dict[str, tuple[float, float]]] = {}
    keys = sorted({(r.family, r.dataset) for r in results})
    for family, dataset in keys:
        group = [
            r for r in results if r.family == family and r.dataset == dataset
        ]
        cells = {}
        for code in codes:
            thresholds = np.array([r.best_threshold(code) for r in group])
            cells[code] = (float(thresholds.mean()), float(thresholds.std()))
        table[(family, dataset)] = cells
    return table


def threshold_correlations(
    results: list[GraphRunResult],
    codes: tuple[str, ...] = PAPER_ALGORITHM_CODES,
) -> dict[str, np.ndarray]:
    """Figure 9: per family, the k x k Pearson matrix between the
    algorithms' optimal thresholds across graphs."""
    figure: dict[str, np.ndarray] = {}
    for family in sorted({r.family for r in results}):
        group = [r for r in results if r.family == family]
        thresholds = np.array(
            [[r.best_threshold(code) for code in codes] for r in group]
        )
        k = len(codes)
        matrix = np.eye(k)
        for a in range(k):
            for b in range(a + 1, k):
                correlation = pearson_correlation(
                    thresholds[:, a], thresholds[:, b]
                )
                matrix[a, b] = matrix[b, a] = correlation
        figure[family] = matrix
    return figure
