"""N-gram graph models — Appendix B.2.2 (JInsect substitute).

An entity value becomes an undirected graph whose nodes are character
or token n-grams and whose edges connect grams co-occurring within a
window of size ``n``, weighted by co-occurrence frequency.  Value
graphs are merged into one entity graph with the update (running
average) operator.  Four graph similarities are defined: Containment,
Value, Normalized Value and Overall.

For the all-pairs experimental protocol the graphs are flattened into
sparse vectors over an *edge vocabulary*, which turns the graph
measures into the same kind of sparse linear algebra the vector models
use.
"""

from repro.ngramgraph.measures import (
    common_edge_matrix,
    containment_matrix,
    normalized_value_matrix,
    overall_matrix,
    pairwise_ratio_sum,
    value_matrix,
)
from repro.ngramgraph.model import (
    NGramGraph,
    build_entity_graphs,
    build_value_graph,
    entity_graph_matrices,
    graphs_to_sparse,
    merge_graphs,
)

__all__ = [
    "NGramGraph",
    "build_value_graph",
    "merge_graphs",
    "build_entity_graphs",
    "graphs_to_sparse",
    "entity_graph_matrices",
    "containment_matrix",
    "value_matrix",
    "normalized_value_matrix",
    "overall_matrix",
    "common_edge_matrix",
    "pairwise_ratio_sum",
]
