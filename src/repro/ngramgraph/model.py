"""Construction and merging of n-gram graphs.

The model of Giannakopoulos et al.: the grams of a value, in order of
appearance, are graph nodes; two grams co-occurring within a window of
``n`` positions are connected by an undirected edge whose weight counts
the co-occurrences.  Per-value graphs are merged into one entity graph
with the *update operator*, implemented here as the running average of
edge weights over the merged graphs (absent edges count as zero), which
is the limit behaviour of JInsect's incremental update.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
from scipy import sparse

from repro.textsim.tokenize import character_ngrams, token_ngrams

__all__ = [
    "NGramGraph",
    "build_value_graph",
    "merge_graphs",
    "build_entity_graphs",
    "graphs_to_sparse",
    "entity_graph_matrices",
]

# An n-gram graph as a mapping from (sorted) gram pairs to edge weight.
NGramGraph = dict[tuple[str, str], float]


def _grams(text: str, n: int, unit: str) -> list[str]:
    if unit == "char":
        return character_ngrams(text, n)
    if unit == "token":
        return token_ngrams(text, n)
    raise ValueError("unit must be 'char' or 'token'")


def build_value_graph(text: str, n: int, unit: str = "char") -> NGramGraph:
    """The n-gram graph of one attribute value.

    Grams at positions ``i < j`` with ``j - i <= n`` are connected;
    parallel co-occurrences accumulate weight.
    """
    grams = _grams(text, n, unit)
    counts: Counter[tuple[str, str]] = Counter()
    for i, gram_i in enumerate(grams):
        for j in range(i + 1, min(i + n + 1, len(grams))):
            a, b = gram_i, grams[j]
            if b < a:
                a, b = b, a
            counts[(a, b)] += 1
    return {edge: float(count) for edge, count in counts.items()}


def merge_graphs(graphs: list[NGramGraph]) -> NGramGraph:
    """Merge value graphs with the update (running average) operator.

    Every edge weight in the result is the mean of its weights across
    all merged graphs, counting absence as zero.
    """
    if not graphs:
        return {}
    if len(graphs) == 1:
        return dict(graphs[0])
    totals: dict[tuple[str, str], float] = {}
    for graph in graphs:
        for edge, weight in graph.items():
            totals[edge] = totals.get(edge, 0.0) + weight
    count = len(graphs)
    return {edge: weight / count for edge, weight in totals.items()}


def build_entity_graphs(
    value_lists: list[list[str]], n: int, unit: str = "char"
) -> list[NGramGraph]:
    """One merged n-gram graph per entity from its attribute values."""
    return [
        merge_graphs([build_value_graph(value, n, unit) for value in values])
        for values in value_lists
    ]


def graphs_to_sparse(
    graphs_left: list[NGramGraph],
    graphs_right: list[NGramGraph],
) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
    """Flatten two graph collections into aligned sparse edge vectors.

    Every distinct edge of either collection becomes one column; cell
    values are the edge weights.  This representation makes the four
    graph similarities computable with sparse matrix products.
    """
    vocabulary: dict[tuple[str, str], int] = {}
    for graph in graphs_left:
        for edge in graph:
            vocabulary.setdefault(edge, len(vocabulary))
    for graph in graphs_right:
        for edge in graph:
            vocabulary.setdefault(edge, len(vocabulary))

    def assemble(graphs: list[NGramGraph]) -> sparse.csr_matrix:
        rows: list[int] = []
        cols: list[int] = []
        values: list[float] = []
        for row, graph in enumerate(graphs):
            for edge, weight in graph.items():
                rows.append(row)
                cols.append(vocabulary[edge])
                values.append(weight)
        return sparse.csr_matrix(
            (np.asarray(values), (rows, cols)),
            shape=(len(graphs), len(vocabulary)),
            dtype=np.float64,
        )

    return assemble(graphs_left), assemble(graphs_right)


def entity_graph_matrices(
    value_lists_left: list[list[str]],
    value_lists_right: list[list[str]],
    n: int,
    unit: str = "char",
) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
    """Sparse entity-graph matrices for two collections in one step.

    Building the per-entity graphs dominates the cost of every graph
    measure; all four measures of one ``(unit, n)`` model consume the
    same pair of matrices, so callers should build them once (see
    :class:`repro.pipeline.engine.ArtifactCache`).
    """
    graphs_left = build_entity_graphs(value_lists_left, n, unit)
    graphs_right = build_entity_graphs(value_lists_right, n, unit)
    return graphs_to_sparse(graphs_left, graphs_right)
