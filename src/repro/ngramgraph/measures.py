"""All-pairs n-gram graph similarity measures (Appendix B.2.2).

With ``|G|`` the number of edges of graph ``G`` and the sum running
over the common edges of ``G_i`` and ``G_j``:

* Containment  ``CoS = |common| / min(|G_i|, |G_j|)``
* Value        ``VS  = Σ min(w_i, w_j)/max(w_i, w_j) / max(|G_i|, |G_j|)``
* NormValue    ``NS  = Σ min(w_i, w_j)/max(w_i, w_j) / min(|G_i|, |G_j|)``
* Overall      ``OS  = (CoS + VS + NS) / 3``

All return dense ``n1 x n2`` arrays given the sparse edge-vector
representation from :func:`repro.ngramgraph.model.graphs_to_sparse`.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

__all__ = [
    "containment_matrix",
    "value_matrix",
    "normalized_value_matrix",
    "overall_matrix",
    "pairwise_ratio_sum",
    "common_edge_matrix",
]


def _binary(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    binary = matrix.copy()
    binary.data = np.ones_like(binary.data)
    return binary


def _edge_counts(matrix: sparse.csr_matrix) -> np.ndarray:
    return np.diff(matrix.indptr).astype(np.float64)


def pairwise_ratio_sum(
    left: sparse.csr_matrix, right: sparse.csr_matrix
) -> np.ndarray:
    """``Σ_k min(a_k, b_k) / max(a_k, b_k)`` over common features.

    Same column-sweep strategy as
    :func:`repro.vectorspace.measures.pairwise_min_sum`.
    """
    result = np.zeros((left.shape[0], right.shape[0]))
    left_csc = left.tocsc()
    right_csc = right.tocsc()
    for col in range(left.shape[1]):
        a_start, a_end = left_csc.indptr[col], left_csc.indptr[col + 1]
        if a_start == a_end:
            continue
        b_start, b_end = right_csc.indptr[col], right_csc.indptr[col + 1]
        if b_start == b_end:
            continue
        rows_a = left_csc.indices[a_start:a_end]
        rows_b = right_csc.indices[b_start:b_end]
        vals_a = left_csc.data[a_start:a_end]
        vals_b = right_csc.data[b_start:b_end]
        ratios = np.minimum.outer(vals_a, vals_b) / np.maximum.outer(
            vals_a, vals_b
        )
        result[np.ix_(rows_a, rows_b)] += ratios
    return result


def common_edge_matrix(
    left: sparse.csr_matrix, right: sparse.csr_matrix
) -> np.ndarray:
    """Number of common edges for every graph pair.

    Shared intermediate of Containment and Overall; all-pairs callers
    should compute it once per ``(unit, n)`` model (see
    :class:`repro.pipeline.engine.ArtifactCache`).
    """
    return np.asarray((_binary(left) @ _binary(right).T).todense())


def containment_matrix(
    left: sparse.csr_matrix,
    right: sparse.csr_matrix,
    common: np.ndarray | None = None,
) -> np.ndarray:
    """Common-edge fraction relative to the smaller graph."""
    if common is None:
        common = common_edge_matrix(left, right)
    sizes_left = _edge_counts(left)
    sizes_right = _edge_counts(right)
    smaller = np.minimum.outer(sizes_left, sizes_right)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(smaller > 0, common / smaller, 0.0)


def value_matrix(
    left: sparse.csr_matrix,
    right: sparse.csr_matrix,
    ratio: np.ndarray | None = None,
) -> np.ndarray:
    """Weight-aware similarity normalized by the larger graph."""
    if ratio is None:
        ratio = pairwise_ratio_sum(left, right)
    larger = np.maximum.outer(_edge_counts(left), _edge_counts(right))
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(larger > 0, ratio / larger, 0.0)


def normalized_value_matrix(
    left: sparse.csr_matrix,
    right: sparse.csr_matrix,
    ratio: np.ndarray | None = None,
) -> np.ndarray:
    """Weight-aware similarity normalized by the smaller graph."""
    if ratio is None:
        ratio = pairwise_ratio_sum(left, right)
    smaller = np.minimum.outer(_edge_counts(left), _edge_counts(right))
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(smaller > 0, ratio / smaller, 0.0)


def overall_matrix(
    left: sparse.csr_matrix,
    right: sparse.csr_matrix,
    ratio: np.ndarray | None = None,
    common: np.ndarray | None = None,
) -> np.ndarray:
    """Average of Containment, Value and Normalized Value."""
    if common is None:
        common = common_edge_matrix(left, right)
    if ratio is None:
        ratio = pairwise_ratio_sum(left, right)
    sizes_left = _edge_counts(left)
    sizes_right = _edge_counts(right)
    smaller = np.minimum.outer(sizes_left, sizes_right)
    larger = np.maximum.outer(sizes_left, sizes_right)
    with np.errstate(invalid="ignore", divide="ignore"):
        containment = np.where(smaller > 0, common / smaller, 0.0)
        value = np.where(larger > 0, ratio / larger, 0.0)
        normalized = np.where(smaller > 0, ratio / smaller, 0.0)
    return (containment + value + normalized) / 3.0
