"""Relaxed Word Mover's Distance (RWMD).

The exact WMD is an optimal-transport problem; the paper computed it
with scipy on the server testbed.  For the all-pairs protocol this
module uses the standard *relaxed* WMD of Kusner et al.: dropping one
of the two flow constraints gives a greedy nearest-neighbour transport
whose cost lower-bounds WMD; taking the maximum of the two directional
relaxations tightens the bound and restores symmetry.  RWMD preserves
the ordering behaviour WMD contributes to the similarity taxonomy at a
tiny fraction of the cost (see DESIGN.md substitutions).

:func:`relaxed_word_mover_distance` is the scalar reference kernel:
the all-pairs path
(:func:`repro.embeddings.measures.word_mover_similarity_matrix`)
batches the Gram/distance/min stages over token-count buckets but
keeps this function's exact operation order per pair — the stacked
``np.matmul`` slices and the final ``np.dot`` reductions reproduce it
bit for bit, which the differential tests in
``tests/pipeline/test_kernels.py`` pin down.  Change the arithmetic
here and the batched kernel must change with it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["relaxed_word_mover_distance", "token_stats"]


def token_stats(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-text RWMD inputs: squared token norms and uniform weights.

    These depend only on the text, not on the pair, so all-pairs
    callers can compute them once per text and pass them to
    :func:`relaxed_word_mover_distance` instead of paying for them in
    every one of the ``n1 x n2`` pair evaluations.
    """
    n = matrix.shape[0]
    squared = np.sum(matrix * matrix, axis=1)
    weights = np.full(n, 1.0 / n) if n else np.empty(0)
    return squared, weights


def _directional_cost(
    source: np.ndarray,
    weights: np.ndarray,
    distance: np.ndarray,
    axis: int,
) -> float:
    """Greedy transport cost with only the source constraint kept."""
    nearest = distance.min(axis=axis)
    return float(np.dot(weights, nearest))


def relaxed_word_mover_distance(
    tokens_a: np.ndarray,
    tokens_b: np.ndarray,
    weights_a: np.ndarray | None = None,
    weights_b: np.ndarray | None = None,
    sq_a: np.ndarray | None = None,
    sq_b: np.ndarray | None = None,
) -> float:
    """RWMD between two token-embedding matrices.

    Parameters
    ----------
    tokens_a, tokens_b:
        ``(k, dim)`` matrices of token vectors.
    weights_a, weights_b:
        Normalized token weights; uniform by default.
    sq_a, sq_b:
        Precomputed per-token squared norms (see :func:`token_stats`);
        computed here by default.

    Returns
    -------
    float
        ``max`` of the two directional relaxations; ``0`` when both
        texts are empty, ``inf`` when exactly one is empty (no
        transport plan exists).
    """
    n_a = tokens_a.shape[0]
    n_b = tokens_b.shape[0]
    if n_a == 0 and n_b == 0:
        return 0.0
    if n_a == 0 or n_b == 0:
        return float("inf")
    if weights_a is None:
        weights_a = np.full(n_a, 1.0 / n_a)
    if weights_b is None:
        weights_b = np.full(n_b, 1.0 / n_b)

    # Pairwise Euclidean distances via the Gram expansion.
    if sq_a is None:
        sq_a = np.sum(tokens_a * tokens_a, axis=1)
    if sq_b is None:
        sq_b = np.sum(tokens_b * tokens_b, axis=1)
    squared = sq_a[:, None] + sq_b[None, :] - 2.0 * (tokens_a @ tokens_b.T)
    distance = np.sqrt(np.maximum(squared, 0.0))

    cost_ab = _directional_cost(tokens_a, weights_a, distance, axis=1)
    cost_ba = _directional_cost(tokens_b, weights_b, distance, axis=0)
    return max(cost_ab, cost_ba)
