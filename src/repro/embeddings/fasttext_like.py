"""fastText-style subword embeddings (offline substitute).

fastText vectorizes a token by summing the embeddings of all its
character n-grams, which lets it embed out-of-vocabulary tokens — the
very reason the paper chose it over word2vec/GloVe.  This model keeps
that composition rule but draws the n-gram embeddings from the
deterministic hash space of :mod:`repro.embeddings.hashing` instead of
pre-trained weights.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.hashing import hash_vector
from repro.textsim.tokenize import tokens

__all__ = ["FastTextLikeModel"]


class FastTextLikeModel:
    """Character n-gram composition embeddings.

    Parameters
    ----------
    dim:
        Embedding dimensionality (the paper's fastText uses 300; the
        default 64 preserves behaviour at a fraction of the cost).
    min_n, max_n:
        Range of character n-gram lengths composed into a token vector
        (fastText's defaults are 3..6; token boundaries are marked with
        ``<`` and ``>`` as in the original).
    """

    name = "fasttext_like"

    def __init__(self, dim: int = 64, min_n: int = 3, max_n: int = 5) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if not (0 < min_n <= max_n):
            raise ValueError("need 0 < min_n <= max_n")
        self.dim = dim
        self.min_n = min_n
        self.max_n = max_n
        self._token_cache: dict[str, np.ndarray] = {}

    def _subwords(self, token: str) -> list[str]:
        marked = f"<{token}>"
        grams: list[str] = []
        for n in range(self.min_n, self.max_n + 1):
            if len(marked) < n:
                continue
            grams.extend(
                marked[i : i + n] for i in range(len(marked) - n + 1)
            )
        if not grams:
            grams = [marked]
        return grams

    def embed_token(self, token: str) -> np.ndarray:
        """Unit vector of one token: normalized sum of subword vectors."""
        cached = self._token_cache.get(token)
        if cached is not None:
            return cached
        total = np.zeros(self.dim)
        for gram in self._subwords(token):
            total += hash_vector(gram, self.dim)
        norm = np.linalg.norm(total)
        if norm > 0:
            total = total / norm
        self._token_cache[token] = total
        return total

    def embed_tokens(self, text: str) -> np.ndarray:
        """Matrix of token vectors, one row per token of ``text``."""
        words = tokens(text)
        if not words:
            return np.zeros((0, self.dim))
        return np.vstack([self.embed_token(word) for word in words])

    def embed_text(self, text: str) -> np.ndarray:
        """Mean of the token vectors (zero vector for empty text)."""
        matrix = self.embed_tokens(text)
        if matrix.shape[0] == 0:
            return np.zeros(self.dim)
        return matrix.mean(axis=0)

    def embed_texts(self, texts: list[str]) -> np.ndarray:
        """Stacked text embeddings, one row per input text."""
        return np.vstack([self.embed_text(text) for text in texts])
