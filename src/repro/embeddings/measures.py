"""All-pairs semantic similarity measures (Section 4, semantic models).

Three measures, as in the paper's appendix:

* Cosine similarity of the pooled text embeddings, rescaled from
  ``[-1, 1]`` to ``[0, 1]`` (the min-max normalization the paper
  applies to every graph makes the affine rescaling inconsequential
  for the algorithms, but keeps intermediate weights in range);
* Euclidean similarity ``1 / (1 + euclidean_distance)``;
* Word Mover's similarity ``1 / (1 + RWMD)`` over token embeddings.

The RWMD matrix no longer evaluates a Python function per pair: texts
are bucketed by token count and each bucket pair runs one stacked
``np.matmul`` (bit-identical per slice to the per-pair gemm) followed
by batched distance/min reductions; only the final ``np.dot`` weighted
sums stay per-pair, because BLAS matvec and vector-dot accumulate in
different orders.  The frozen pair loop remains available as
:func:`word_mover_similarity_matrix_legacy` for differential testing.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.wmd import relaxed_word_mover_distance, token_stats

__all__ = [
    "cosine_similarity_matrix",
    "euclidean_similarity_matrix",
    "word_mover_similarity_matrix",
    "word_mover_similarity_matrix_legacy",
]


def _dense_row_chunk(n_right: int) -> int:
    # Imported lazily: repro.pipeline modules import this module at
    # load time, so a top-level import would be circular.
    from repro.pipeline.kernels import row_chunk_size

    return row_chunk_size(n_right)


def cosine_similarity_matrix(
    left: np.ndarray, right: np.ndarray
) -> np.ndarray:
    """Pairwise cosine of embedding rows, mapped to ``[0, 1]``.

    The gemm runs in fixed-size row chunks (the shape-determined
    :func:`~repro.pipeline.kernels.row_chunk_size`) so peak memory is
    one chunk rather than the full grid.  Because every other step is
    elementwise per row, a call over any chunk-aligned row slice of
    ``left`` produces exactly the rows the full call would — the
    bit-identity contract of the sharded execution tier.
    """
    norms_left = np.linalg.norm(left, axis=1)
    norms_right = np.linalg.norm(right, axis=1)
    safe_left = np.where(norms_left > 0, norms_left, 1.0)
    safe_right = np.where(norms_right > 0, norms_right, 1.0)
    unit_left = left / safe_left[:, None]
    unit_right_t = (right / safe_right[:, None]).T
    n_left, n_right = len(left), len(right)
    result = np.empty((n_left, n_right))
    chunk = _dense_row_chunk(n_right)
    for lo in range(0, n_left, chunk):
        hi = min(lo + chunk, n_left)
        cosine = np.clip(unit_left[lo:hi] @ unit_right_t, -1.0, 1.0)
        result[lo:hi] = (cosine + 1.0) / 2.0
    return result


def euclidean_similarity_matrix(
    left: np.ndarray, right: np.ndarray
) -> np.ndarray:
    """``1 / (1 + ||x - y||)`` for every embedding pair.

    Chunked over rows exactly like :func:`cosine_similarity_matrix`,
    with the same chunk-aligned row-slice bit-identity guarantee.
    """
    sq_left = np.sum(left * left, axis=1)
    sq_right = np.sum(right * right, axis=1)
    right_t = right.T
    n_left, n_right = len(left), len(right)
    result = np.empty((n_left, n_right))
    chunk = _dense_row_chunk(n_right)
    for lo in range(0, n_left, chunk):
        hi = min(lo + chunk, n_left)
        squared = (
            sq_left[lo:hi, None]
            + sq_right[None, :]
            - 2.0 * (left[lo:hi] @ right_t)
        )
        distance = np.sqrt(np.maximum(squared, 0.0))
        result[lo:hi] = 1.0 / (1.0 + distance)
    return result


#: Cap on ``pairs x tokens_a x tokens_b`` cells materialized per RWMD
#: bucket chunk (~32 MB of float64 for the distance tensor).
_RWMD_BLOCK_CELLS = 1 << 22


def word_mover_similarity_matrix(
    token_matrices_left: list[np.ndarray],
    token_matrices_right: list[np.ndarray],
    stats_left: list[tuple[np.ndarray, np.ndarray]] | None = None,
    stats_right: list[tuple[np.ndarray, np.ndarray]] | None = None,
) -> np.ndarray:
    """``1 / (1 + RWMD)`` for every pair of token-embedding matrices.

    Pairs where exactly one side has no tokens get similarity ``0``
    (infinite transport cost); pairs where both sides are token-less
    get ``1`` (zero cost), matching the scalar convention.  ``stats_*``
    optionally supply the per-text ``(squared norms, weights)`` pairs
    of :func:`repro.embeddings.wmd.token_stats`.

    Texts are grouped into token-count buckets; each ``(count_a,
    count_b)`` bucket pair computes its Gram tensor with one stacked
    ``np.matmul`` whose 2-D slices have exactly the per-pair shapes, so
    every entry is bit-identical to the legacy pair loop.
    """
    n_left = len(token_matrices_left)
    n_right = len(token_matrices_right)
    result = np.zeros((n_left, n_right))
    if n_left == 0 or n_right == 0:
        return result
    if stats_left is None:
        stats_left = [token_stats(m) for m in token_matrices_left]
    if stats_right is None:
        stats_right = [token_stats(m) for m in token_matrices_right]

    counts_left = np.array([m.shape[0] for m in token_matrices_left])
    counts_right = np.array([m.shape[0] for m in token_matrices_right])
    empty_left = np.flatnonzero(counts_left == 0)
    empty_right = np.flatnonzero(counts_right == 0)
    if len(empty_left) and len(empty_right):
        # Both sides token-less: RWMD 0 -> similarity 1.
        result[np.ix_(empty_left, empty_right)] = 1.0

    buckets_left = _count_buckets(counts_left)
    # Hoisted per-right-bucket artifacts: the pre-transposed stacks
    # (np.matmul slices then match the per-pair ``tokens_a @
    # tokens_b.T`` gemm shapes exactly) are shared by every left
    # bucket.
    buckets_right = [
        (
            count,
            cols,
            np.stack([token_matrices_right[j].T for j in cols]),
            np.stack([stats_right[j][0] for j in cols]),
            [stats_right[j][1] for j in cols],
        )
        for count, cols in _count_buckets(counts_right)
    ]
    for count_a, rows in buckets_left:
        stack_a = np.stack([token_matrices_left[i] for i in rows])
        sq_a = np.stack([stats_left[i][0] for i in rows])
        weights_a = [stats_left[i][1] for i in rows]
        for count_b, cols, stack_bt, sq_b, weights_b in buckets_right:
            # Tile both bucket axes so the materialized distance
            # tensor stays near the cell cap regardless of how many
            # texts share a token count.
            pair_cells = count_a * count_b
            col_chunk = max(1, _RWMD_BLOCK_CELLS // pair_cells)
            row_chunk = max(
                1,
                _RWMD_BLOCK_CELLS
                // (min(col_chunk, len(cols)) * pair_cells),
            )
            for c_begin in range(0, len(cols), col_chunk):
                c_end = min(c_begin + col_chunk, len(cols))
                for r_begin in range(0, len(rows), row_chunk):
                    r_end = min(r_begin + row_chunk, len(rows))
                    block = _rwmd_block(
                        stack_a[r_begin:r_end],
                        sq_a[r_begin:r_end],
                        weights_a[r_begin:r_end],
                        stack_bt[c_begin:c_end],
                        sq_b[c_begin:c_end],
                        weights_b[c_begin:c_end],
                    )
                    result[
                        np.ix_(rows[r_begin:r_end], cols[c_begin:c_end])
                    ] = block
    return result


def _count_buckets(counts: np.ndarray) -> list[tuple[int, np.ndarray]]:
    """``(token count, text indices)`` groups, token-less texts excluded."""
    return [
        (int(count), np.flatnonzero(counts == count))
        for count in np.unique(counts)
        if count > 0
    ]


def _rwmd_block(
    stack_a: np.ndarray,
    sq_a: np.ndarray,
    weights_a: list[np.ndarray],
    stack_bt: np.ndarray,
    sq_b: np.ndarray,
    weights_b: list[np.ndarray],
) -> np.ndarray:
    """RWMD similarities of one ``(count_a, count_b)`` bucket chunk."""
    gram = np.matmul(stack_a[:, None], stack_bt[None, :])
    squared = (
        sq_a[:, None, :, None] + sq_b[None, :, None, :]
    ) - 2.0 * gram
    distance = np.sqrt(np.maximum(squared, 0.0))
    nearest_ab = distance.min(axis=3)
    nearest_ba = distance.min(axis=2)
    n_a, n_b = len(weights_a), len(weights_b)
    cost = np.empty((n_a, n_b))
    for i in range(n_a):
        for j in range(n_b):
            # np.dot keeps the exact legacy accumulation order (BLAS
            # matvec would not).
            cost[i, j] = max(
                np.dot(weights_a[i], nearest_ab[i, j]),
                np.dot(weights_b[j], nearest_ba[i, j]),
            )
    return 1.0 / (1.0 + cost)


def word_mover_similarity_matrix_legacy(
    token_matrices_left: list[np.ndarray],
    token_matrices_right: list[np.ndarray],
    stats_left: list[tuple[np.ndarray, np.ndarray]] | None = None,
    stats_right: list[tuple[np.ndarray, np.ndarray]] | None = None,
) -> np.ndarray:
    """Frozen per-pair RWMD loop (pre-kernel-engine reference)."""
    n_left = len(token_matrices_left)
    n_right = len(token_matrices_right)
    result = np.zeros((n_left, n_right))
    no_stats = (None, None)
    for i, tokens_a in enumerate(token_matrices_left):
        sq_a, weights_a = (
            stats_left[i] if stats_left is not None else no_stats
        )
        for j, tokens_b in enumerate(token_matrices_right):
            sq_b, weights_b = (
                stats_right[j] if stats_right is not None else no_stats
            )
            distance = relaxed_word_mover_distance(
                tokens_a,
                tokens_b,
                weights_a=weights_a,
                weights_b=weights_b,
                sq_a=sq_a,
                sq_b=sq_b,
            )
            if np.isinf(distance):
                result[i, j] = 0.0
            else:
                result[i, j] = 1.0 / (1.0 + distance)
    return result
