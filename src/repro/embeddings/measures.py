"""All-pairs semantic similarity measures (Section 4, semantic models).

Three measures, as in the paper's appendix:

* Cosine similarity of the pooled text embeddings, rescaled from
  ``[-1, 1]`` to ``[0, 1]`` (the min-max normalization the paper
  applies to every graph makes the affine rescaling inconsequential
  for the algorithms, but keeps intermediate weights in range);
* Euclidean similarity ``1 / (1 + euclidean_distance)``;
* Word Mover's similarity ``1 / (1 + RWMD)`` over token embeddings.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.wmd import relaxed_word_mover_distance

__all__ = [
    "cosine_similarity_matrix",
    "euclidean_similarity_matrix",
    "word_mover_similarity_matrix",
]


def cosine_similarity_matrix(
    left: np.ndarray, right: np.ndarray
) -> np.ndarray:
    """Pairwise cosine of embedding rows, mapped to ``[0, 1]``."""
    norms_left = np.linalg.norm(left, axis=1)
    norms_right = np.linalg.norm(right, axis=1)
    safe_left = np.where(norms_left > 0, norms_left, 1.0)
    safe_right = np.where(norms_right > 0, norms_right, 1.0)
    cosine = (left / safe_left[:, None]) @ (right / safe_right[:, None]).T
    cosine = np.clip(cosine, -1.0, 1.0)
    return (cosine + 1.0) / 2.0


def euclidean_similarity_matrix(
    left: np.ndarray, right: np.ndarray
) -> np.ndarray:
    """``1 / (1 + ||x - y||)`` for every embedding pair."""
    sq_left = np.sum(left * left, axis=1)
    sq_right = np.sum(right * right, axis=1)
    squared = sq_left[:, None] + sq_right[None, :] - 2.0 * (left @ right.T)
    distance = np.sqrt(np.maximum(squared, 0.0))
    return 1.0 / (1.0 + distance)


def word_mover_similarity_matrix(
    token_matrices_left: list[np.ndarray],
    token_matrices_right: list[np.ndarray],
    stats_left: list[tuple[np.ndarray, np.ndarray]] | None = None,
    stats_right: list[tuple[np.ndarray, np.ndarray]] | None = None,
) -> np.ndarray:
    """``1 / (1 + RWMD)`` for every pair of token-embedding matrices.

    Pairs where exactly one side has no tokens get similarity ``0``
    (infinite transport cost).  ``stats_*`` optionally supply the
    per-text ``(squared norms, weights)`` pairs of
    :func:`repro.embeddings.wmd.token_stats`, hoisting their
    computation out of the ``n1 x n2`` pair loop.
    """
    n_left = len(token_matrices_left)
    n_right = len(token_matrices_right)
    result = np.zeros((n_left, n_right))
    no_stats = (None, None)
    for i, tokens_a in enumerate(token_matrices_left):
        sq_a, weights_a = (
            stats_left[i] if stats_left is not None else no_stats
        )
        for j, tokens_b in enumerate(token_matrices_right):
            sq_b, weights_b = (
                stats_right[j] if stats_right is not None else no_stats
            )
            distance = relaxed_word_mover_distance(
                tokens_a,
                tokens_b,
                weights_a=weights_a,
                weights_b=weights_b,
                sq_a=sq_a,
                sq_b=sq_b,
            )
            if np.isinf(distance):
                result[i, j] = 0.0
            else:
                result[i, j] = 1.0 / (1.0 + distance)
    return result
