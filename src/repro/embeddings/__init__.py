"""Semantic representation models (fastText / ALBERT substitute).

The paper's semantic similarity graphs come from two pre-trained dense
models: 300-d fastText (character-level) and 768-d ALBERT (contextual).
Pre-trained weights are unavailable offline, so this package implements
the closest deterministic equivalents that exercise the same code
paths (see DESIGN.md, substitutions):

* :class:`FastTextLikeModel` — a token vector is the normalized sum of
  deterministic hash vectors of its character n-grams, exactly
  fastText's subword composition.  Shared character n-grams between
  any two strings yield non-trivial cosine similarity for most pairs,
  reproducing the paper's key observation that semantic weights assign
  "relatively high similarity scores to most pairs of entities".
* :class:`ContextualModel` — token vectors are mixed with their
  neighbours' vectors before aggregation, so the same token obtains
  different representations in different contexts (the property that
  distinguishes transformer embeddings from static ones).

Three similarity measures are defined on these models, as in the paper:
Cosine, Euclidean similarity ``1 / (1 + distance)`` and Word Mover's
similarity ``1 / (1 + RWMD)`` using the relaxed word mover's distance.
"""

from repro.embeddings.contextual import ContextualModel
from repro.embeddings.fasttext_like import FastTextLikeModel
from repro.embeddings.hashing import hash_vector
from repro.embeddings.measures import (
    cosine_similarity_matrix,
    euclidean_similarity_matrix,
    word_mover_similarity_matrix,
)
from repro.embeddings.wmd import relaxed_word_mover_distance

__all__ = [
    "hash_vector",
    "FastTextLikeModel",
    "ContextualModel",
    "cosine_similarity_matrix",
    "euclidean_similarity_matrix",
    "word_mover_similarity_matrix",
    "relaxed_word_mover_distance",
]
