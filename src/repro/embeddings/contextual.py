"""Context-mixing embeddings (ALBERT substitute).

Transformer language models assign a token different vectors in
different contexts.  This substitute reproduces that property with a
single self-attention-flavoured mixing step: each token's base (hash)
vector is averaged with its neighbours inside a context window, plus a
small positional component.  Homonyms thus receive distinct vectors in
distinct contexts, and synonym-free texts with overlapping context
windows still score a non-trivial similarity — the distributional
behaviour the paper reports for BERT-family weights.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.hashing import hash_vector
from repro.textsim.tokenize import tokens

__all__ = ["ContextualModel"]


class ContextualModel:
    """Neighbour-mixing contextual embeddings.

    Parameters
    ----------
    dim:
        Embedding dimensionality (the paper's ALBERT uses 768).
    window:
        Context radius: token ``i`` mixes with tokens ``i-window`` to
        ``i+window``.
    mix:
        Weight of the context component relative to the token's own
        vector (0 reduces to static embeddings).
    positional_scale:
        Magnitude of the sinusoidal positional component.
    """

    name = "albert_like"

    def __init__(
        self,
        dim: int = 96,
        window: int = 2,
        mix: float = 0.5,
        positional_scale: float = 0.1,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if window < 0:
            raise ValueError("window must be non-negative")
        if not 0.0 <= mix <= 1.0:
            raise ValueError("mix must be within [0, 1]")
        self.dim = dim
        self.window = window
        self.mix = mix
        self.positional_scale = positional_scale
        self._positional_cache: dict[int, np.ndarray] = {}

    def _positional(self, position: int) -> np.ndarray:
        """Sinusoidal positional encoding (transformer-style).

        Encodings depend only on the position, so they are memoized —
        embedding a whole collection revisits the same few positions
        thousands of times.
        """
        cached = self._positional_cache.get(position)
        if cached is not None:
            return cached
        indices = np.arange(self.dim)
        angles = position / np.power(
            10_000.0, (2 * (indices // 2)) / self.dim
        )
        encoding = np.where(indices % 2 == 0, np.sin(angles), np.cos(angles))
        encoding = self.positional_scale * encoding
        self._positional_cache[position] = encoding
        return encoding

    def embed_tokens(self, text: str) -> np.ndarray:
        """Context-dependent token vectors, one row per token."""
        words = tokens(text)
        if not words:
            return np.zeros((0, self.dim))
        base = np.vstack([hash_vector(word, self.dim) for word in words])
        contextual = np.empty_like(base)
        n = len(words)
        for i in range(n):
            low = max(0, i - self.window)
            high = min(n, i + self.window + 1)
            context = base[low:high].mean(axis=0)
            mixed = (1.0 - self.mix) * base[i] + self.mix * context
            mixed = mixed + self._positional(i)
            norm = np.linalg.norm(mixed)
            contextual[i] = mixed / norm if norm > 0 else mixed
        return contextual

    def embed_text(self, text: str) -> np.ndarray:
        """Mean-pooled contextual embedding of ``text``."""
        matrix = self.embed_tokens(text)
        if matrix.shape[0] == 0:
            return np.zeros(self.dim)
        return matrix.mean(axis=0)

    def embed_texts(self, texts: list[str]) -> np.ndarray:
        """Stacked text embeddings, one row per input text."""
        return np.vstack([self.embed_text(text) for text in texts])
