"""Deterministic hash embeddings.

Every string maps to a fixed unit vector derived from a cryptographic
hash of its content: the hash seeds a PRNG that draws the vector from
an isotropic Gaussian.  Distinct strings therefore get near-orthogonal
vectors (in high dimension), identical strings always get the same
vector — exactly the property subword hashing relies on in fastText's
own implementation.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["hash_vector", "clear_cache"]

_CACHE: dict[tuple[str, int], np.ndarray] = {}
_CACHE_LIMIT = 200_000


def hash_vector(text: str, dim: int) -> np.ndarray:
    """Deterministic unit vector of dimension ``dim`` for ``text``."""
    key = (text, dim)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    seed = int.from_bytes(digest, "little")
    rng = np.random.default_rng(seed)
    vector = rng.standard_normal(dim)
    norm = np.linalg.norm(vector)
    if norm > 0:
        vector /= norm
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.clear()
    _CACHE[key] = vector
    return vector


def clear_cache() -> None:
    """Drop all memoized vectors (useful in memory-sensitive tests)."""
    _CACHE.clear()
