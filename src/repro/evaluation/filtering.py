"""Corpus noise filters (Section 5, Generation Process).

The paper cleans the experimental inputs in three steps:

1. remove graphs where all matching entities have zero edge weight
   (done at generation time in the workbench);
2. remove *noisy* graphs where every algorithm stays below F1 = 0.25;
3. remove *duplicate* inputs: graphs from the same dataset with the
   same number of edges where at least two algorithms achieve their
   best performance at the same threshold with near-identical
   effectiveness (difference below 0.2%).

Filters 2 and 3 need the sweep results, so they operate on the
(graph, per-algorithm sweep) pairs produced by the experiment runner.
"""

from __future__ import annotations

from typing import Mapping

from repro.evaluation.sweep import SweepResult

__all__ = ["is_noisy_graph", "find_duplicate_inputs", "F1_NOISE_FLOOR"]

#: The paper's noise floor: graphs where no algorithm reaches this F1.
F1_NOISE_FLOOR = 0.25

#: The paper's near-identity tolerance for duplicate detection (0.2%).
DUPLICATE_TOLERANCE = 0.002


def is_noisy_graph(
    sweeps: Mapping[str, SweepResult], floor: float = F1_NOISE_FLOOR
) -> bool:
    """True when every algorithm's best F1 is below ``floor``."""
    if not sweeps:
        return True
    return all(
        sweep.best_scores.f_measure < floor for sweep in sweeps.values()
    )


def _near(a: float, b: float, tolerance: float) -> bool:
    return abs(a - b) < tolerance


def _graphs_equivalent(
    sweeps_a: Mapping[str, SweepResult],
    sweeps_b: Mapping[str, SweepResult],
    tolerance: float,
) -> bool:
    """At least two algorithms agree on threshold and effectiveness."""
    agreeing = 0
    for code in sweeps_a.keys() & sweeps_b.keys():
        best_a = sweeps_a[code].best
        best_b = sweeps_b[code].best
        if best_a.threshold != best_b.threshold:
            continue
        same_f1 = _near(
            best_a.scores.f_measure, best_b.scores.f_measure, tolerance
        )
        same_p_or_r = _near(
            best_a.scores.precision, best_b.scores.precision, tolerance
        ) or _near(best_a.scores.recall, best_b.scores.recall, tolerance)
        if same_f1 and same_p_or_r:
            agreeing += 1
            if agreeing >= 2:
                return True
    return False


def find_duplicate_inputs(
    entries: list[tuple[str, int, Mapping[str, SweepResult]]],
    tolerance: float = DUPLICATE_TOLERANCE,
) -> set[int]:
    """Indices of entries that duplicate an earlier one.

    ``entries`` are ``(dataset_code, n_edges, sweeps)`` triples in
    corpus order; a graph is a duplicate when an earlier graph of the
    same dataset has the same edge count and near-identical best
    performance for at least two algorithms.
    """
    duplicates: set[int] = set()
    for i in range(len(entries)):
        if i in duplicates:
            continue
        dataset_i, edges_i, sweeps_i = entries[i]
        for j in range(i + 1, len(entries)):
            if j in duplicates:
                continue
            dataset_j, edges_j, sweeps_j = entries[j]
            if dataset_i != dataset_j or edges_i != edges_j:
                continue
            if _graphs_equivalent(sweeps_i, sweeps_j, tolerance):
                duplicates.add(j)
    return duplicates
