"""Evaluation framework (Sections 5-6 of the paper).

* :mod:`repro.evaluation.metrics` — precision / recall / F-measure of
  a matching against the ground truth, plus the vectorized
  :class:`GroundTruthIndex` shared across a sweep's evaluations;
* :mod:`repro.evaluation.sweep` — the similarity-threshold sweep
  (0.05 .. 1.00, step 0.05) with the paper's optimal-threshold rule
  ("the largest threshold that achieves the highest F-Measure"),
  running on the compiled-graph engine (one compile per graph, cached
  threshold slices per grid point);
* :mod:`repro.evaluation.filtering` — the noise filters applied to the
  graph corpus (low-signal graphs, duplicate inputs);
* :mod:`repro.evaluation.stats` — Friedman test, Nemenyi post-hoc
  critical distance, mean ranks and Pearson correlations;
* :mod:`repro.evaluation.report` — fixed-width table rendering used by
  the benchmark harnesses.
"""

from repro.evaluation.metrics import (
    EffectivenessScores,
    GroundTruthIndex,
    clusters_to_pairs,
    evaluate_clusters,
    evaluate_pairs,
)
from repro.evaluation.stats import (
    critical_difference,
    friedman_test,
    mean_ranks,
    nemenyi_diagram,
    pearson_correlation,
)
from repro.evaluation.sweep import (
    DEFAULT_THRESHOLD_GRID,
    SweepResult,
    dirty_threshold_sweep,
    optimal_threshold,
    threshold_sweep,
    threshold_sweep_best_of,
)

__all__ = [
    "EffectivenessScores",
    "GroundTruthIndex",
    "evaluate_pairs",
    "clusters_to_pairs",
    "evaluate_clusters",
    "dirty_threshold_sweep",
    "DEFAULT_THRESHOLD_GRID",
    "SweepResult",
    "threshold_sweep",
    "threshold_sweep_best_of",
    "optimal_threshold",
    "friedman_test",
    "mean_ranks",
    "critical_difference",
    "nemenyi_diagram",
    "pearson_correlation",
]
