"""Effectiveness measures for CCER (Section 5, Evaluation Measures).

* *Precision* — the portion of output partitions that involve two
  matching entities;
* *Recall* — the portion of matching pairs that appear in the output;
* *F-Measure* — their harmonic mean.

All are defined on the 2-node partitions only; singletons carry no
weight in either direction.

:func:`evaluate_pairs` is the one-shot API; a threshold sweep scores
the same ground truth hundreds of times, so
:class:`GroundTruthIndex` pre-sorts the truth pairs once and answers
every subsequent lookup with a vectorized binary search, producing
numbers identical to :func:`evaluate_pairs`.

The Dirty-ER extension scores *clusterings* instead of matchings:
every intra-cluster pair is an asserted duplicate, so a clustering is
evaluated by the pair-level precision/recall/F1 of its induced pair
set (:func:`clusters_to_pairs`, :func:`evaluate_clusters`,
:meth:`GroundTruthIndex.score_clusters`).  Singletons induce no pairs
and carry no weight in either direction, mirroring the bipartite
convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "EffectivenessScores",
    "GroundTruthIndex",
    "evaluate_pairs",
    "clusters_to_pairs",
    "evaluate_clusters",
]


@dataclass(frozen=True)
class EffectivenessScores:
    """Precision / recall / F-measure plus the underlying counts."""

    precision: float
    recall: float
    f_measure: float
    true_positives: int
    output_pairs: int
    ground_truth_pairs: int

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.precision, self.recall, self.f_measure)


def evaluate_pairs(
    pairs: Iterable[tuple[int, int]],
    ground_truth: set[tuple[int, int]],
) -> EffectivenessScores:
    """Score a set of matched pairs against the ground truth."""
    output = set(pairs)
    true_positives = len(output & ground_truth)
    n_output = len(output)
    n_truth = len(ground_truth)
    precision = true_positives / n_output if n_output else 0.0
    recall = true_positives / n_truth if n_truth else 0.0
    if precision + recall > 0:
        f_measure = 2 * precision * recall / (precision + recall)
    else:
        f_measure = 0.0
    return EffectivenessScores(
        precision=precision,
        recall=recall,
        f_measure=f_measure,
        true_positives=true_positives,
        output_pairs=n_output,
        ground_truth_pairs=n_truth,
    )


def clusters_to_pairs(
    clusters: Iterable[Iterable[int]],
) -> set[tuple[int, int]]:
    """All intra-cluster node pairs, canonically oriented (``u < v``).

    This is the pair set a Dirty-ER clustering asserts: every two
    members of one cluster are claimed duplicates.  Singleton clusters
    contribute nothing.
    """
    from itertools import combinations

    pairs: set[tuple[int, int]] = set()
    for cluster in clusters:
        pairs.update(combinations(sorted(cluster), 2))
    return pairs


def evaluate_clusters(
    clusters: Iterable[Iterable[int]],
    ground_truth: set[tuple[int, int]],
) -> EffectivenessScores:
    """Pair-level precision/recall/F1 of a Dirty-ER clustering.

    The ground truth holds canonical ``(u, v)`` duplicate pairs with
    ``u < v``; the clustering is scored by the pairs it induces.
    """
    return evaluate_pairs(clusters_to_pairs(clusters), ground_truth)


def _pair_keys(pairs: np.ndarray) -> np.ndarray:
    """Fold an ``(n, 2)`` pair array into one int64 key per pair.

    Indices are non-negative entity ids well below ``2**31``, so
    ``(left << 32) | right`` is collision-free.
    """
    return (pairs[:, 0].astype(np.int64) << 32) | pairs[:, 1].astype(np.int64)


class GroundTruthIndex:
    """Sorted-key index over a ground-truth pair set.

    Built once per dataset (or per sweep) and shared across every
    ``(algorithm, threshold)`` evaluation; :meth:`score` returns
    exactly what ``evaluate_pairs(pairs, ground_truth)`` would, but the
    membership test is one ``searchsorted`` over the pre-sorted keys
    instead of a fresh Python set intersection.
    """

    __slots__ = ("_keys", "n_truth")

    def __init__(self, ground_truth: Iterable[tuple[int, int]]) -> None:
        truth = set(ground_truth)
        self.n_truth = len(truth)
        if truth:
            pairs = np.array(sorted(truth), dtype=np.int64)
            self._keys = np.sort(_pair_keys(pairs))
        else:
            self._keys = np.zeros(0, dtype=np.int64)

    def _distinct_keys(self, pairs: Iterable[tuple[int, int]]) -> np.ndarray:
        pairs = list(pairs)
        if not pairs:
            return np.zeros(0, dtype=np.int64)
        return np.unique(_pair_keys(np.asarray(pairs, dtype=np.int64)))

    def _match_count(self, keys: np.ndarray) -> int:
        """How many of the (distinct, sorted) keys are truth pairs."""
        if not len(keys) or not len(self._keys):
            return 0
        positions = np.searchsorted(self._keys, keys)
        in_range = positions < len(self._keys)
        return int(
            np.count_nonzero(
                self._keys[positions[in_range]] == keys[in_range]
            )
        )

    def true_positives(self, pairs: Iterable[tuple[int, int]]) -> int:
        """Number of distinct output pairs present in the truth set."""
        return self._match_count(self._distinct_keys(pairs))

    def score_clusters(
        self, clusters: Iterable[Iterable[int]]
    ) -> EffectivenessScores:
        """Score a Dirty-ER clustering; identical to
        :func:`evaluate_clusters` against the same ground truth.

        Disjoint clusters induce intrinsically distinct pairs, so the
        keys are assembled vectorized per cluster (``triu_indices``)
        and only sorted — no dedup pass, no Python tuple set.
        """
        key_chunks = []
        for cluster in clusters:
            if len(cluster) < 2:
                continue
            nodes = np.fromiter(cluster, dtype=np.int64)
            nodes.sort()
            first, second = np.triu_indices(len(nodes), k=1)
            key_chunks.append((nodes[first] << 32) | nodes[second])
        if not key_chunks:
            keys = np.zeros(0, dtype=np.int64)
        else:
            keys = np.concatenate(key_chunks)
            keys.sort()
        return self._score_keys(keys)

    def score(self, pairs: Iterable[tuple[int, int]]) -> EffectivenessScores:
        """Score matched pairs; identical to :func:`evaluate_pairs`."""
        return self._score_keys(self._distinct_keys(pairs))

    def _score_keys(self, keys: np.ndarray) -> EffectivenessScores:
        """Score pre-sorted, distinct fold keys."""
        n_output = len(keys)
        true_positives = self._match_count(keys)
        precision = true_positives / n_output if n_output else 0.0
        recall = true_positives / self.n_truth if self.n_truth else 0.0
        if precision + recall > 0:
            f_measure = 2 * precision * recall / (precision + recall)
        else:
            f_measure = 0.0
        return EffectivenessScores(
            precision=precision,
            recall=recall,
            f_measure=f_measure,
            true_positives=true_positives,
            output_pairs=n_output,
            ground_truth_pairs=self.n_truth,
        )
