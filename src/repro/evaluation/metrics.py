"""Effectiveness measures for CCER (Section 5, Evaluation Measures).

* *Precision* — the portion of output partitions that involve two
  matching entities;
* *Recall* — the portion of matching pairs that appear in the output;
* *F-Measure* — their harmonic mean.

All are defined on the 2-node partitions only; singletons carry no
weight in either direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["EffectivenessScores", "evaluate_pairs"]


@dataclass(frozen=True)
class EffectivenessScores:
    """Precision / recall / F-measure plus the underlying counts."""

    precision: float
    recall: float
    f_measure: float
    true_positives: int
    output_pairs: int
    ground_truth_pairs: int

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.precision, self.recall, self.f_measure)


def evaluate_pairs(
    pairs: Iterable[tuple[int, int]],
    ground_truth: set[tuple[int, int]],
) -> EffectivenessScores:
    """Score a set of matched pairs against the ground truth."""
    output = set(pairs)
    true_positives = len(output & ground_truth)
    n_output = len(output)
    n_truth = len(ground_truth)
    precision = true_positives / n_output if n_output else 0.0
    recall = true_positives / n_truth if n_truth else 0.0
    if precision + recall > 0:
        f_measure = 2 * precision * recall / (precision + recall)
    else:
        f_measure = 0.0
    return EffectivenessScores(
        precision=precision,
        recall=recall,
        f_measure=f_measure,
        true_positives=true_positives,
        output_pairs=n_output,
        ground_truth_pairs=n_truth,
    )
