"""Fixed-width table rendering for the benchmark harnesses.

The benches print the same rows/series as the paper's tables; this
module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "format_float", "format_mu_sigma"]


def format_float(value: float, digits: int = 3) -> str:
    """Compact float formatting (``0.518`` style, as in the paper)."""
    return f"{value:.{digits}f}"


def format_mu_sigma(mu: float, sigma: float, digits: int = 3) -> str:
    """``mu ± sigma`` cell, as in Tables 4 and 8."""
    return f"{mu:.{digits}f}±{sigma:.{digits}f}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    columns = len(headers)
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row!r}"
            )
        cells.append([str(value) for value in row])
    widths = [
        max(len(cells[r][c]) for r in range(len(cells)))
        for c in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        cells[0][c].ljust(widths[c]) for c in range(columns)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * widths[c] for c in range(columns)))
    for row_cells in cells[1:]:
        lines.append(
            " | ".join(row_cells[c].ljust(widths[c]) for c in range(columns))
        )
    return "\n".join(lines)
