"""Similarity-threshold sweep (Section 5, Generation Process).

Every algorithm is applied to every similarity graph with thresholds
from 0.05 to 1.00 in steps of 0.05; "the largest threshold that
achieves the highest F-Measure is selected as the optimal one,
determining the performance of the algorithm for the particular
input".

The sweep runs on the compiled-graph engine: the graph is compiled
once (descending edge permutation, CSR adjacency — see
:mod:`repro.graph.compiled`) and every grid point consumes a cached
prefix slice through ``Matcher.match_compiled``, instead of each of
the ~200 ``(algorithm, threshold)`` runs per graph re-masking and
re-sorting the same arrays.  Ground-truth lookups go through one
shared :class:`~repro.evaluation.metrics.GroundTruthIndex`.  Results
are bit-identical to the legacy per-call path (the differential suite
and ``benchmarks/bench_matching_sweep.py`` enforce this).

For BMC, which has the extra basis-collection parameter, the paper
examines both options and retains the best one; pass several matchers
to :func:`threshold_sweep_best_of` for that behaviour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.evaluation.metrics import (
    EffectivenessScores,
    GroundTruthIndex,
)
from repro.graph.bipartite import SimilarityGraph
from repro.matching.base import Matcher

__all__ = [
    "DEFAULT_THRESHOLD_GRID",
    "SweepPoint",
    "SweepResult",
    "threshold_sweep",
    "threshold_sweep_best_of",
    "dirty_threshold_sweep",
    "optimal_threshold",
    "sweeps_to_payload",
    "sweeps_from_payload",
]

#: The paper's grid: 0.05, 0.10, ..., 1.00.
DEFAULT_THRESHOLD_GRID: tuple[float, ...] = tuple(
    round(0.05 * k, 2) for k in range(1, 21)
)


@dataclass(frozen=True)
class SweepPoint:
    """One (threshold, scores, runtime) sample of a sweep."""

    threshold: float
    scores: EffectivenessScores
    seconds: float


@dataclass
class SweepResult:
    """The full sweep of one algorithm over one graph."""

    algorithm: str
    points: list[SweepPoint] = field(default_factory=list)

    @property
    def best(self) -> SweepPoint:
        """The paper's optimum: highest F1, largest threshold on ties."""
        if not self.points:
            raise ValueError("sweep has no points")
        return max(
            self.points, key=lambda p: (p.scores.f_measure, p.threshold)
        )

    @property
    def best_threshold(self) -> float:
        return self.best.threshold

    @property
    def best_scores(self) -> EffectivenessScores:
        return self.best.scores

    @property
    def mean_seconds(self) -> float:
        """Average per-run matching time across the sweep."""
        if not self.points:
            return 0.0
        return sum(p.seconds for p in self.points) / len(self.points)

    @property
    def best_seconds(self) -> float:
        """Runtime of the run at the optimal threshold."""
        return self.best.seconds


def threshold_sweep(
    matcher: Matcher,
    graph: SimilarityGraph,
    ground_truth: set[tuple[int, int]],
    grid: tuple[float, ...] = DEFAULT_THRESHOLD_GRID,
    skip_equivalent: bool = True,
    truth_index: GroundTruthIndex | None = None,
) -> SweepResult:
    """Run ``matcher`` over every threshold of ``grid``.

    The graph is compiled once up front; each grid point then runs the
    matcher's compiled kernel against a cached threshold slice.  Pass
    ``truth_index`` to share one pre-built ground-truth index across
    several sweeps of the same dataset (the experiment runner does).

    With ``skip_equivalent`` (the default), a grid step that contains
    no edge weight in ``[previous, current]`` re-uses the previous
    result: every algorithm observes the threshold only through
    ``w > t`` / ``w >= t`` comparisons, so its output cannot change.
    This keeps the 20-point sweep cheap on graphs whose weights
    concentrate in a narrow band.

    Each point's ``seconds`` measures the *warm-engine marginal* run:
    one untimed call at the first grid threshold precedes the loop, so
    the shared per-graph setup (compile, adjacency, an algorithm's
    threshold-independent kernel state such as RCA's assignment passes
    or BAH's contribution map) is excluded uniformly instead of being
    charged to whichever point happens to run first.
    """
    compiled = graph.compiled()
    if truth_index is None:
        truth_index = GroundTruthIndex(ground_truth)
    if grid:
        matcher.match_compiled(compiled, grid[0])  # warm, untimed

    result = SweepResult(algorithm=matcher.code)
    # The compiled graph already holds the ascending weight sort.
    sorted_weights = compiled.weight_ascending if skip_equivalent else None
    previous_threshold: float | None = None
    previous_point: SweepPoint | None = None
    for threshold in grid:
        if (
            previous_point is not None
            and sorted_weights is not None
            and _no_weight_in_range(
                sorted_weights, previous_threshold, threshold
            )
        ):
            point = SweepPoint(
                threshold=threshold,
                scores=previous_point.scores,
                seconds=previous_point.seconds,
            )
        else:
            start = time.perf_counter()
            matching = matcher.match_compiled(compiled, threshold)
            elapsed = time.perf_counter() - start
            scores = truth_index.score(matching.pairs)
            point = SweepPoint(
                threshold=threshold, scores=scores, seconds=elapsed
            )
        result.points.append(point)
        previous_threshold = threshold
        previous_point = point
    return result


def _no_weight_in_range(sorted_weights, low: float, high: float) -> bool:
    """True when no edge weight lies in the closed interval [low, high]."""
    start = np.searchsorted(sorted_weights, low, side="left")
    end = np.searchsorted(sorted_weights, high, side="right")
    return start == end


# ----------------------------------------------------------------------
# Sweep (de)serialization
# ----------------------------------------------------------------------
def sweeps_to_payload(sweeps: dict[str, SweepResult]) -> dict:
    """JSON-compatible form of an algorithm→sweep mapping.

    Floats survive ``json.dumps``/``loads`` exactly (repr round-trip),
    so a payload decoded by :func:`sweeps_from_payload` is
    bit-identical to the sweeps it encodes — the results cache and the
    resilience run journal both rely on this.
    """
    return {
        code: [
            [
                point.threshold,
                point.scores.precision,
                point.scores.recall,
                point.scores.f_measure,
                point.scores.true_positives,
                point.scores.output_pairs,
                point.scores.ground_truth_pairs,
                point.seconds,
            ]
            for point in sweep.points
        ]
        for code, sweep in sweeps.items()
    }


def sweeps_from_payload(payload: dict) -> dict[str, SweepResult]:
    """Inverse of :func:`sweeps_to_payload`."""
    sweeps: dict[str, SweepResult] = {}
    for code, points in payload.items():
        sweep = SweepResult(algorithm=code)
        for (
            threshold, precision, recall, f_measure,
            true_positives, output_pairs, truth_pairs, seconds,
        ) in points:
            sweep.points.append(
                SweepPoint(
                    threshold=threshold,
                    scores=EffectivenessScores(
                        precision=precision,
                        recall=recall,
                        f_measure=f_measure,
                        true_positives=int(true_positives),
                        output_pairs=int(output_pairs),
                        ground_truth_pairs=int(truth_pairs),
                    ),
                    seconds=seconds,
                )
            )
        sweeps[code] = sweep
    return sweeps


def threshold_sweep_best_of(
    matchers: list[Matcher],
    graph: SimilarityGraph,
    ground_truth: set[tuple[int, int]],
    grid: tuple[float, ...] = DEFAULT_THRESHOLD_GRID,
    truth_index: GroundTruthIndex | None = None,
) -> SweepResult:
    """Sweep several configurations and keep the best (by best F1).

    This implements the paper's treatment of BMC's basis parameter:
    "we examine both options and retain the best one".  All
    configurations share the same compiled graph and truth index.
    """
    if not matchers:
        raise ValueError("matchers must not be empty")
    if truth_index is None:
        truth_index = GroundTruthIndex(ground_truth)
    sweeps = [
        threshold_sweep(
            matcher, graph, ground_truth, grid, truth_index=truth_index
        )
        for matcher in matchers
    ]
    return max(sweeps, key=lambda s: s.best_scores.f_measure)


def dirty_threshold_sweep(
    clusterer,
    graph,
    ground_truth: set[tuple[int, int]],
    grid: tuple[float, ...] = DEFAULT_THRESHOLD_GRID,
    skip_equivalent: bool = True,
    truth_index: GroundTruthIndex | None = None,
) -> SweepResult:
    """The Dirty-ER counterpart of :func:`threshold_sweep`.

    ``clusterer`` is a :class:`repro.extensions.dirty_er.DirtyClusterer`
    and ``graph`` a :class:`repro.graph.unipartite.UnipartiteGraph`;
    the graph is compiled once up front (descending edge permutation,
    symmetric CSR — see :mod:`repro.graph.unipartite`) and every grid
    point runs the clusterer's compiled kernel against a cached
    inclusive threshold selection, scored at cluster level through the
    shared :class:`~repro.evaluation.metrics.GroundTruthIndex`.

    ``skip_equivalent`` mirrors the bipartite sweep: every clustering
    algorithm observes the threshold only through ``w >= t``
    comparisons, so a grid step containing no edge weight cannot
    change the output.  ``seconds`` is the warm-engine marginal, with
    one untimed call at the first grid threshold.
    """
    compiled = graph.compiled()
    if truth_index is None:
        truth_index = GroundTruthIndex(ground_truth)
    if grid:
        clusterer.cluster_compiled(compiled, grid[0])  # warm, untimed

    result = SweepResult(algorithm=clusterer.code)
    sorted_weights = compiled.weight_ascending if skip_equivalent else None
    previous_threshold: float | None = None
    previous_point: SweepPoint | None = None
    for threshold in grid:
        if (
            previous_point is not None
            and sorted_weights is not None
            and _no_weight_in_range(
                sorted_weights, previous_threshold, threshold
            )
        ):
            point = SweepPoint(
                threshold=threshold,
                scores=previous_point.scores,
                seconds=previous_point.seconds,
            )
        else:
            start = time.perf_counter()
            clusters = clusterer.cluster_compiled(compiled, threshold)
            elapsed = time.perf_counter() - start
            scores = truth_index.score_clusters(clusters)
            point = SweepPoint(
                threshold=threshold, scores=scores, seconds=elapsed
            )
        result.points.append(point)
        previous_threshold = threshold
        previous_point = point
    return result


def optimal_threshold(
    matcher: Matcher,
    graph: SimilarityGraph,
    ground_truth: set[tuple[int, int]],
    grid: tuple[float, ...] = DEFAULT_THRESHOLD_GRID,
) -> float:
    """Shorthand: the optimal threshold of ``matcher`` on ``graph``."""
    return threshold_sweep(matcher, graph, ground_truth, grid).best_threshold
