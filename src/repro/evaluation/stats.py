"""Statistical analysis: Friedman test, Nemenyi post-hoc, correlations.

The paper assesses significance with the non-parametric Friedman test
over the paired per-graph F-measures, followed by a post-hoc Nemenyi
test whose critical distance with k=8 algorithms over N=739 graphs is
0.37 (Figure 2).  This module reproduces both plus the ASCII rendering
of the Nemenyi diagrams (Figures 2, 7, 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

__all__ = [
    "FriedmanResult",
    "friedman_test",
    "mean_ranks",
    "critical_difference",
    "nemenyi_diagram",
    "pearson_correlation",
]

# Two-tailed Nemenyi critical values q_alpha(k) at alpha = 0.05
# (studentized range statistic divided by sqrt(2); Demsar 2006, Table 5).
_Q_ALPHA_005 = {
    2: 1.960,
    3: 2.343,
    4: 2.569,
    5: 2.728,
    6: 2.850,
    7: 2.949,
    8: 3.031,
    9: 3.102,
    10: 3.164,
}


@dataclass(frozen=True)
class FriedmanResult:
    """Friedman test outcome over a (graphs x algorithms) score table."""

    statistic: float
    p_value: float
    rejected: bool  # null hypothesis rejected at the given alpha
    alpha: float


def friedman_test(scores: np.ndarray, alpha: float = 0.05) -> FriedmanResult:
    """Friedman test on an ``N x k`` score matrix (rows = graphs).

    Rejecting the null hypothesis means the algorithms' score
    distributions differ significantly.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2 or scores.shape[1] < 3:
        raise ValueError("need an N x k matrix with k >= 3")
    statistic, p_value = scipy_stats.friedmanchisquare(
        *[scores[:, j] for j in range(scores.shape[1])]
    )
    return FriedmanResult(
        statistic=float(statistic),
        p_value=float(p_value),
        rejected=bool(p_value < alpha),
        alpha=alpha,
    )


def mean_ranks(scores: np.ndarray) -> np.ndarray:
    """Mean rank per algorithm (rank 1 = best; ties share ranks).

    ``scores`` is ``N x k`` with higher = better, as in the paper's
    Mean Rank (MR) reporting.
    """
    scores = np.asarray(scores, dtype=np.float64)
    # rankdata ranks ascending; rank descending scores instead.
    ranks = np.vstack(
        [scipy_stats.rankdata(-row, method="average") for row in scores]
    )
    return ranks.mean(axis=0)


def critical_difference(k: int, n: int, alpha: float = 0.05) -> float:
    """Nemenyi critical distance ``q_alpha * sqrt(k(k+1) / 6N)``."""
    if alpha != 0.05:
        raise ValueError("only alpha = 0.05 is tabulated")
    if k not in _Q_ALPHA_005:
        raise ValueError(f"k must be in {sorted(_Q_ALPHA_005)}")
    if n <= 0:
        raise ValueError("n must be positive")
    return _Q_ALPHA_005[k] * math.sqrt(k * (k + 1) / (6.0 * n))


def nemenyi_diagram(
    names: list[str],
    scores: np.ndarray,
    alpha: float = 0.05,
) -> str:
    """Text rendering of a Nemenyi diagram.

    Lists the algorithms by mean rank and reports which adjacent
    differences are insignificant (within the critical distance), the
    textual analogue of the horizontal bars in the paper's figures.
    """
    scores = np.asarray(scores, dtype=np.float64)
    n, k = scores.shape
    if len(names) != k:
        raise ValueError("one name per column required")
    ranks = mean_ranks(scores)
    cd = critical_difference(k, n, alpha)
    order = np.argsort(ranks)

    lines = [f"Nemenyi diagram (CD = {cd:.3f}, N = {n}, alpha = {alpha})"]
    for position, idx in enumerate(order, start=1):
        lines.append(f"  {position}. {names[idx]:<6} MR = {ranks[idx]:.2f}")
    groups: list[str] = []
    for a in range(k):
        for b in range(a + 1, k):
            i, j = order[a], order[b]
            if abs(ranks[i] - ranks[j]) < cd:
                groups.append(f"{names[i]} ~ {names[j]}")
    if groups:
        lines.append("  not significantly different: " + ", ".join(groups))
    else:
        lines.append("  all pairwise differences are significant")
    return "\n".join(lines)


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson's r, with 0 for degenerate (constant) inputs."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ValueError("arrays must have equal length")
    if x.size < 2 or np.std(x) == 0 or np.std(y) == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])
