"""Tests for effectiveness metrics and the threshold sweep."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import (
    DEFAULT_THRESHOLD_GRID,
    GroundTruthIndex,
    evaluate_pairs,
    optimal_threshold,
    threshold_sweep,
)
from repro.evaluation.sweep import SweepResult, threshold_sweep_best_of
from repro.graph import SimilarityGraph
from repro.matching import BestMatchClustering, UniqueMappingClustering


class TestEvaluatePairs:
    def test_perfect(self):
        truth = {(0, 0), (1, 1)}
        scores = evaluate_pairs([(0, 0), (1, 1)], truth)
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f_measure == 1.0
        assert scores.true_positives == 2

    def test_partial(self):
        truth = {(0, 0), (1, 1), (2, 2), (3, 3)}
        scores = evaluate_pairs([(0, 0), (5, 5)], truth)
        assert scores.precision == 0.5
        assert scores.recall == 0.25
        assert scores.f_measure == pytest.approx(2 * 0.5 * 0.25 / 0.75)

    def test_empty_output(self):
        scores = evaluate_pairs([], {(0, 0)})
        assert scores.precision == 0.0
        assert scores.recall == 0.0
        assert scores.f_measure == 0.0

    def test_empty_ground_truth(self):
        scores = evaluate_pairs([(0, 0)], set())
        assert scores.recall == 0.0
        assert scores.f_measure == 0.0

    def test_duplicate_pairs_counted_once(self):
        truth = {(0, 0)}
        scores = evaluate_pairs([(0, 0), (0, 0)], truth)
        assert scores.output_pairs == 1
        assert scores.precision == 1.0

    @given(
        st.sets(
            st.tuples(
                st.integers(0, 5), st.integers(0, 5)
            ),
            max_size=10,
        ),
        st.sets(
            st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1,
            max_size=10,
        ),
    )
    @settings(max_examples=50)
    def test_measures_in_range(self, output, truth):
        scores = evaluate_pairs(output, truth)
        assert 0.0 <= scores.precision <= 1.0
        assert 0.0 <= scores.recall <= 1.0
        assert 0.0 <= scores.f_measure <= 1.0
        assert min(scores.precision, scores.recall) <= scores.f_measure

    def test_f1_between_p_and_r(self):
        truth = {(0, 0), (1, 1), (2, 2)}
        scores = evaluate_pairs([(0, 0), (9, 9)], truth)
        low, high = sorted([scores.precision, scores.recall])
        assert low <= scores.f_measure <= high


class TestGroundTruthIndex:
    """The vectorized index must agree with evaluate_pairs exactly."""

    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=15
        ),
        st.sets(
            st.tuples(st.integers(0, 6), st.integers(0, 6)), max_size=15
        ),
    )
    @settings(max_examples=100)
    def test_score_equals_evaluate_pairs(self, output, truth):
        index = GroundTruthIndex(truth)
        assert index.score(output) == evaluate_pairs(output, truth)

    def test_true_positive_count(self):
        index = GroundTruthIndex({(0, 0), (1, 1), (2, 2)})
        assert index.true_positives([(0, 0), (1, 1), (5, 5)]) == 2
        assert index.true_positives([]) == 0
        assert index.true_positives([(0, 0), (0, 0)]) == 1

    def test_empty_truth(self):
        index = GroundTruthIndex(set())
        assert index.n_truth == 0
        assert index.score([(0, 0)]) == evaluate_pairs([(0, 0)], set())

    def test_index_reusable_across_evaluations(self):
        truth = {(i, i) for i in range(8)}
        index = GroundTruthIndex(truth)
        for output in ([(0, 0)], [(1, 1), (2, 3)], [], [(7, 7), (9, 0)]):
            assert index.score(output) == evaluate_pairs(output, truth)

    def test_large_indices_do_not_collide(self):
        truth = {(2**30, 1), (1, 2**30)}
        index = GroundTruthIndex(truth)
        scores = index.score([(2**30, 1), (1, 2**30), (2**30, 2)])
        assert scores.true_positives == 2


class TestSweep:
    def _graph_and_truth(self):
        graph = SimilarityGraph.from_edges(
            3,
            3,
            [
                (0, 0, 0.9),
                (1, 1, 0.6),
                (2, 2, 0.4),
                (0, 1, 0.3),  # noise edge
                (1, 0, 0.35),  # noise edge
            ],
        )
        truth = {(0, 0), (1, 1), (2, 2)}
        return graph, truth

    def test_grid_matches_paper(self):
        assert DEFAULT_THRESHOLD_GRID[0] == 0.05
        assert DEFAULT_THRESHOLD_GRID[-1] == 1.0
        assert len(DEFAULT_THRESHOLD_GRID) == 20

    def test_sweep_covers_grid(self):
        graph, truth = self._graph_and_truth()
        sweep = threshold_sweep(UniqueMappingClustering(), graph, truth)
        assert [p.threshold for p in sweep.points] == list(
            DEFAULT_THRESHOLD_GRID
        )

    def test_optimal_is_largest_on_ties(self):
        graph, truth = self._graph_and_truth()
        sweep = threshold_sweep(UniqueMappingClustering(), graph, truth)
        # All thresholds in [0.05, 0.35] give perfect F1 (the noise
        # edges are dominated); the optimum must be the largest of them.
        best = sweep.best
        assert best.scores.f_measure == 1.0
        assert best.threshold == pytest.approx(0.35)

    def test_optimal_threshold_shorthand(self):
        graph, truth = self._graph_and_truth()
        assert optimal_threshold(
            UniqueMappingClustering(), graph, truth
        ) == pytest.approx(0.35)

    def test_runtime_recorded(self):
        graph, truth = self._graph_and_truth()
        sweep = threshold_sweep(UniqueMappingClustering(), graph, truth)
        assert sweep.mean_seconds >= 0.0
        assert sweep.best_seconds >= 0.0

    def test_empty_sweep_raises(self):
        with pytest.raises(ValueError):
            SweepResult(algorithm="UMC").best

    def test_best_of_picks_better_basis(self):
        graph, truth = self._graph_and_truth()
        best = threshold_sweep_best_of(
            [BestMatchClustering("left"), BestMatchClustering("right")],
            graph,
            truth,
        )
        single = threshold_sweep(BestMatchClustering("left"), graph, truth)
        assert best.best_scores.f_measure >= single.best_scores.f_measure

    def test_best_of_requires_matchers(self):
        graph, truth = self._graph_and_truth()
        with pytest.raises(ValueError):
            threshold_sweep_best_of([], graph, truth)


class TestClusterMetrics:
    """Cluster-level scoring for the dirty-ER extension."""

    def test_clusters_to_pairs_canonical(self):
        from repro.evaluation.metrics import clusters_to_pairs

        pairs = clusters_to_pairs([{3, 1, 2}, {5}, {7, 6}])
        assert pairs == {(1, 2), (1, 3), (2, 3), (6, 7)}

    def test_singletons_carry_no_weight(self):
        from repro.evaluation.metrics import evaluate_clusters

        scores = evaluate_clusters([{0}, {1}, {2}], {(0, 1)})
        assert scores.precision == 0.0
        assert scores.recall == 0.0
        assert scores.output_pairs == 0

    def test_evaluate_clusters_counts(self):
        from repro.evaluation.metrics import evaluate_clusters

        scores = evaluate_clusters(
            [{0, 1, 2}, {3, 4}], {(0, 1), (3, 4), (8, 9)}
        )
        assert scores.output_pairs == 4  # 3 + 1 intra-cluster pairs
        assert scores.true_positives == 2
        assert scores.precision == pytest.approx(2 / 4)
        assert scores.recall == pytest.approx(2 / 3)

    def test_index_matches_scalar_path(self):
        from repro.evaluation.metrics import (
            GroundTruthIndex,
            evaluate_clusters,
        )

        clusters = [{0, 1, 2}, {3, 4}, {5}, set(range(6, 15))]
        truth = {(0, 1), (0, 2), (3, 4), (6, 7), (97, 99)}
        index = GroundTruthIndex(truth)
        assert index.score_clusters(clusters) == evaluate_clusters(
            clusters, truth
        )

    def test_empty_clustering(self):
        from repro.evaluation.metrics import GroundTruthIndex

        index = GroundTruthIndex({(0, 1)})
        scores = index.score_clusters([])
        assert scores.f_measure == 0.0
        assert scores.ground_truth_pairs == 1
