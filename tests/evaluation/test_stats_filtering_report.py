"""Tests for the statistics, filtering and report modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.filtering import (
    F1_NOISE_FLOOR,
    find_duplicate_inputs,
    is_noisy_graph,
)
from repro.evaluation.metrics import EffectivenessScores
from repro.evaluation.report import format_mu_sigma, render_table
from repro.evaluation.stats import (
    critical_difference,
    friedman_test,
    mean_ranks,
    nemenyi_diagram,
    pearson_correlation,
)
from repro.evaluation.sweep import SweepPoint, SweepResult


def _scores(f1: float, precision: float = 0.5, recall: float = 0.5):
    return EffectivenessScores(
        precision=precision,
        recall=recall,
        f_measure=f1,
        true_positives=0,
        output_pairs=0,
        ground_truth_pairs=0,
    )


def _sweep(code: str, threshold: float, f1: float, precision=0.5, recall=0.5):
    result = SweepResult(algorithm=code)
    result.points.append(
        SweepPoint(
            threshold=threshold,
            scores=_scores(f1, precision, recall),
            seconds=0.0,
        )
    )
    return result


class TestFriedman:
    def test_distinguishes_clear_differences(self):
        rng = np.random.default_rng(0)
        n = 50
        scores = np.column_stack(
            [
                rng.uniform(0.8, 0.9, n),  # clearly best
                rng.uniform(0.4, 0.5, n),
                rng.uniform(0.1, 0.2, n),  # clearly worst
            ]
        )
        result = friedman_test(scores)
        assert result.rejected
        assert result.p_value < 0.01

    def test_requires_three_columns(self):
        with pytest.raises(ValueError):
            friedman_test(np.ones((10, 2)))

    def test_mean_ranks_ordering(self):
        scores = np.array([[0.9, 0.5, 0.1]] * 5)
        ranks = mean_ranks(scores)
        assert ranks[0] == 1.0
        assert ranks[1] == 2.0
        assert ranks[2] == 3.0

    def test_mean_ranks_ties(self):
        scores = np.array([[0.5, 0.5]] * 4)
        ranks = mean_ranks(scores)
        assert ranks[0] == ranks[1] == 1.5


class TestCriticalDifference:
    def test_paper_value(self):
        """k=8 algorithms, N=739 graphs -> CD ~ 0.37 (Figure 2)."""
        assert critical_difference(8, 739) == pytest.approx(0.386, abs=0.01)

    def test_grows_with_fewer_samples(self):
        assert critical_difference(8, 100) > critical_difference(8, 1000)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            critical_difference(15, 100)
        with pytest.raises(ValueError):
            critical_difference(8, 0)
        with pytest.raises(ValueError):
            critical_difference(8, 100, alpha=0.01)


class TestNemenyiDiagram:
    def test_renders_ranks_and_cd(self):
        rng = np.random.default_rng(1)
        scores = np.column_stack(
            [rng.uniform(0.7, 0.9, 30), rng.uniform(0.4, 0.6, 30),
             rng.uniform(0.1, 0.3, 30)]
        )
        text = nemenyi_diagram(["AAA", "BBB", "CCC"], scores)
        assert "CD" in text
        assert text.index("AAA") < text.index("BBB") < text.index("CCC")

    def test_insignificant_pairs_reported(self):
        scores = np.array([[0.5, 0.5001, 0.1]] * 10)
        text = nemenyi_diagram(["A", "B", "C"], scores)
        assert "A ~ B" in text or "B ~ A" in text

    def test_requires_matching_names(self):
        with pytest.raises(ValueError):
            nemenyi_diagram(["A"], np.ones((5, 3)))


class TestPearson:
    def test_perfect_positive(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson_correlation(x, 2 * x) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_degenerate_is_zero(self):
        assert pearson_correlation(
            np.ones(5), np.arange(5, dtype=float)
        ) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(3), np.ones(4))


class TestNoiseFiltering:
    def test_noisy_graph_detected(self):
        sweeps = {
            "UMC": _sweep("UMC", 0.5, 0.1),
            "KRC": _sweep("KRC", 0.5, 0.2),
        }
        assert is_noisy_graph(sweeps)

    def test_signal_graph_kept(self):
        sweeps = {
            "UMC": _sweep("UMC", 0.5, 0.1),
            "KRC": _sweep("KRC", 0.5, F1_NOISE_FLOOR + 0.01),
        }
        assert not is_noisy_graph(sweeps)

    def test_empty_is_noisy(self):
        assert is_noisy_graph({})


class TestDuplicateDetection:
    def _entry(self, dataset, edges, f1_a=0.8, f1_b=0.7, threshold=0.5):
        sweeps = {
            "UMC": _sweep("UMC", threshold, f1_a),
            "KRC": _sweep("KRC", threshold, f1_b),
        }
        return (dataset, edges, sweeps)

    def test_duplicates_found(self):
        entries = [self._entry("d1", 100), self._entry("d1", 100)]
        assert find_duplicate_inputs(entries) == {1}

    def test_different_edge_counts_not_duplicates(self):
        entries = [self._entry("d1", 100), self._entry("d1", 101)]
        assert find_duplicate_inputs(entries) == set()

    def test_different_datasets_not_duplicates(self):
        entries = [self._entry("d1", 100), self._entry("d2", 100)]
        assert find_duplicate_inputs(entries) == set()

    def test_different_thresholds_not_duplicates(self):
        entries = [
            self._entry("d1", 100, threshold=0.5),
            self._entry("d1", 100, threshold=0.6),
        ]
        assert find_duplicate_inputs(entries) == set()

    def test_needs_two_agreeing_algorithms(self):
        a = ("d1", 100, {
            "UMC": _sweep("UMC", 0.5, 0.8),
            "KRC": _sweep("KRC", 0.5, 0.7),
        })
        b = ("d1", 100, {
            "UMC": _sweep("UMC", 0.5, 0.8),
            "KRC": _sweep("KRC", 0.5, 0.5),  # differs beyond tolerance
        })
        assert find_duplicate_inputs([a, b]) == set()


class TestReport:
    def test_render_table_alignment(self):
        table = render_table(
            ["alg", "F1"], [["UMC", "0.618"], ["KRC", "0.619"]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "alg" in lines[1]
        assert len(lines) == 5

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only one"]])

    def test_format_mu_sigma(self):
        assert format_mu_sigma(0.6175, 0.1932) == "0.618±0.193"
