"""Tests for the synthetic dataset substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    CATEGORY_BY_DATASET,
    DATASET_CODES,
    PAPER_STATS,
    NoiseConfig,
    NoiseModel,
    dataset_spec,
    generate_dataset,
)
from repro.datasets.generator import DatasetSpec
from repro.datasets.profile import EntityCollection, EntityProfile
from repro.datasets.vocabulary import DOMAINS, generate_truth


class TestProfile:
    def test_value_and_missing(self):
        profile = EntityProfile("e1", {"name": "golden dragon", "city": ""})
        assert profile.value("name") == "golden dragon"
        assert profile.value("missing") == ""
        assert profile.values() == ["golden dragon"]

    def test_schema_agnostic_text(self):
        profile = EntityProfile("e1", {"a": "x", "b": "y z"})
        assert profile.schema_agnostic_text() == "x y z"

    def test_nvp_count(self):
        profile = EntityProfile("e1", {"a": "x", "b": "", "c": "y"})
        assert profile.n_name_value_pairs == 2


class TestCollection:
    def _collection(self):
        return EntityCollection(
            "test",
            [
                EntityProfile("e1", {"name": "a", "phone": "1"}),
                EntityProfile("e2", {"name": "b"}),
            ],
        )

    def test_len_iter_getitem(self):
        collection = self._collection()
        assert len(collection) == 2
        assert [p.identifier for p in collection] == ["e1", "e2"]
        assert collection[1].identifier == "e2"

    def test_attribute_values_pads_missing(self):
        assert self._collection().attribute_values("phone") == ["1", ""]

    def test_attribute_names(self):
        assert self._collection().attribute_names() == ["name", "phone"]

    def test_coverage(self):
        assert self._collection().attribute_coverage("phone") == 0.5
        assert self._collection().attribute_coverage("name") == 1.0

    def test_mean_pairs(self):
        assert self._collection().mean_pairs_per_profile == 1.5


class TestVocabulary:
    @pytest.mark.parametrize("domain", sorted(DOMAINS))
    def test_truth_records_nonempty(self, domain):
        rng = np.random.default_rng(0)
        record = generate_truth(domain, rng)
        assert record
        assert all(isinstance(v, str) and v for v in record.values())

    def test_deterministic(self):
        a = generate_truth("movie", np.random.default_rng(7))
        b = generate_truth("movie", np.random.default_rng(7))
        assert a == b

    def test_unknown_domain(self):
        with pytest.raises(KeyError):
            generate_truth("botany", np.random.default_rng(0))


class TestNoise:
    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            NoiseConfig(typo_rate=1.5)
        with pytest.raises(ValueError):
            NoiseConfig(missing_value_rate=-0.1)

    def test_zero_noise_is_identity(self):
        config = NoiseConfig(
            typo_rate=0.0, token_drop_rate=0.0, token_shuffle_prob=0.0,
            abbreviation_prob=0.0, missing_value_rate=0.0,
        )
        model = NoiseModel(config, np.random.default_rng(0))
        record = {"name": "golden dragon", "phone": "555-123-4567"}
        assert model.corrupt_record(record) == record

    def test_typos_change_text(self):
        config = NoiseConfig(typo_rate=0.5)
        model = NoiseModel(config, np.random.default_rng(0))
        text = "the quick brown fox jumps over the lazy dog"
        assert model.corrupt_characters(text) != text

    def test_drop_tokens_keeps_at_least_one(self):
        config = NoiseConfig(token_drop_rate=1.0)
        model = NoiseModel(config, np.random.default_rng(0))
        assert len(model.drop_tokens("a b c d").split()) >= 1

    def test_shuffle_preserves_tokens(self):
        config = NoiseConfig(token_shuffle_prob=1.0)
        model = NoiseModel(config, np.random.default_rng(0))
        out = model.shuffle_tokens("alpha beta gamma delta")
        assert sorted(out.split()) == ["alpha", "beta", "delta", "gamma"]

    def test_missing_values_respect_protection(self):
        config = NoiseConfig(
            missing_value_rate=1.0, protected_attributes=("title",)
        )
        model = NoiseModel(config, np.random.default_rng(0))
        record = {"title": "keep me", "other": "drop me"}
        out = model.corrupt_record(record)
        assert "title" in out
        assert "other" not in out

    def test_misplaced_value_merges_attributes(self):
        config = NoiseConfig(
            typo_rate=0.0, token_drop_rate=0.0, token_shuffle_prob=0.0,
            abbreviation_prob=0.0, missing_value_rate=0.0,
            misplaced_value_rate=1.0,
        )
        model = NoiseModel(config, np.random.default_rng(3))
        record = {"title": "alpha", "authors": "beta"}
        out = model.corrupt_record(record)
        assert len(out) == 1
        merged = next(iter(out.values()))
        assert "alpha" in merged and "beta" in merged

    def test_abbreviation(self):
        config = NoiseConfig(abbreviation_prob=1.0)
        model = NoiseModel(config, np.random.default_rng(0))
        out = model.abbreviate_tokens("gamma delta")
        assert out == "g. d."


class TestSpecValidation:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            DatasetSpec("x", "movie", 0, 10, 0)

    def test_rejects_excess_duplicates(self):
        with pytest.raises(ValueError):
            DatasetSpec("x", "movie", 10, 10, 11)


class TestCatalog:
    def test_ten_datasets(self):
        assert len(DATASET_CODES) == 10
        assert set(CATEGORY_BY_DATASET.values()) == {"BLC", "OSD", "SCR"}

    def test_paper_category_assignment(self):
        """Section 6, QE(4): BLC = D2/D4/D10, OSD = D3/D9, SCR = rest."""
        assert {c for c, v in CATEGORY_BY_DATASET.items() if v == "BLC"} == {
            "d2", "d4", "d10",
        }
        assert {c for c, v in CATEGORY_BY_DATASET.items() if v == "OSD"} == {
            "d3", "d9",
        }

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset_spec("d11")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            dataset_spec("d1", scale=0.0)

    def test_scaling_preserves_ratio(self):
        spec = dataset_spec("d2", scale=0.1, max_pairs=10**9)
        stats = PAPER_STATS["d2"]
        assert spec.n_left == round(stats.n_left * 0.1)
        assert spec.n_right == round(stats.n_right * 0.1)

    def test_max_pairs_cap(self):
        spec = dataset_spec("d10", scale=1.0, max_pairs=10_000)
        assert spec.n_left * spec.n_right <= 11_000  # rounding slack


class TestGeneration:
    @pytest.mark.parametrize("code", DATASET_CODES)
    def test_all_profiles_generate(self, code):
        dataset = generate_dataset(dataset_spec(code, scale=0.02), seed=1)
        assert len(dataset.left) > 0
        assert len(dataset.right) > 0
        assert dataset.n_duplicates > 0
        for i, j in dataset.ground_truth:
            assert 0 <= i < len(dataset.left)
            assert 0 <= j < len(dataset.right)

    def test_deterministic(self):
        spec = dataset_spec("d2", scale=0.03)
        a = generate_dataset(spec, seed=5)
        b = generate_dataset(spec, seed=5)
        assert a.ground_truth == b.ground_truth
        assert a.left[0].attributes == b.left[0].attributes

    def test_seed_changes_content(self):
        spec = dataset_spec("d2", scale=0.03)
        a = generate_dataset(spec, seed=5)
        b = generate_dataset(spec, seed=6)
        assert a.left[0].attributes != b.left[0].attributes

    def test_ground_truth_is_one_to_one(self):
        dataset = generate_dataset(dataset_spec("d4", scale=0.05), seed=2)
        lefts = [i for i, _ in dataset.ground_truth]
        rights = [j for _, j in dataset.ground_truth]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))

    def test_balanced_category_ratios(self):
        dataset = generate_dataset(dataset_spec("d2", scale=0.05), seed=2)
        assert dataset.duplicate_ratio_left() > 0.9
        assert dataset.duplicate_ratio_right() > 0.9

    def test_scarce_category_ratios(self):
        dataset = generate_dataset(dataset_spec("d6", scale=0.05), seed=2)
        assert dataset.duplicate_ratio_left() < 0.5
        assert dataset.duplicate_ratio_right() < 0.5

    def test_one_sided_category_ratios(self):
        dataset = generate_dataset(
            dataset_spec("d9", scale=0.05, max_pairs=10**6), seed=2
        )
        assert dataset.duplicate_ratio_left() > 0.7
        assert dataset.duplicate_ratio_right() < 0.3

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_collections_are_duplicate_free(self, seed):
        """Clean-Clean: no world entity appears twice in a collection."""
        dataset = generate_dataset(dataset_spec("d1", scale=0.05), seed=seed)
        for collection in (dataset.left, dataset.right):
            identifiers = [p.identifier for p in collection]
            assert len(identifiers) == len(set(identifiers))
