"""Tests for the command-line interface."""

from __future__ import annotations

import csv

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def graph_csv(tmp_path):
    path = tmp_path / "graph.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["left", "right", "weight"])
        writer.writerows(
            [[0, 0, 0.9], [1, 1, 0.8], [0, 1, 0.3], [2, 2, 0.7]]
        )
    return path


@pytest.fixture
def truth_csv(tmp_path):
    path = tmp_path / "truth.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["left", "right"])
        writer.writerows([[0, 0], [1, 1], [2, 2]])
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_match_defaults(self):
        args = build_parser().parse_args(["match", "g.csv"])
        assert args.algorithm == "UMC"
        assert args.threshold == 0.5

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "g.csv", "-a", "XYZ"])


class TestMatchCommand:
    def test_prints_pairs(self, graph_csv, capsys):
        exit_code = main(["match", str(graph_csv), "-a", "UMC", "-t", "0.5"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "0,0" in out
        assert "1,1" in out
        assert "0,1" not in out  # below-threshold edge

    def test_threshold_filters(self, graph_csv, capsys):
        main(["match", str(graph_csv), "-t", "0.85"])
        out = capsys.readouterr().out
        assert "0,0" in out
        assert "1,1" not in out


class TestGenerateCommand:
    def test_writes_csvs(self, tmp_path, capsys):
        exit_code = main(
            [
                "generate", "d1", "--scale", "0.03",
                "--out", str(tmp_path / "data"),
            ]
        )
        assert exit_code == 0
        assert (tmp_path / "data" / "d1_left.csv").exists()
        assert (tmp_path / "data" / "d1_right.csv").exists()
        truth = (tmp_path / "data" / "d1_truth.csv").read_text()
        assert truth.startswith("left,right")

    def test_generated_files_parse(self, tmp_path):
        main(["generate", "d2", "--scale", "0.03", "--out", str(tmp_path)])
        with (tmp_path / "d2_left.csv").open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "id"
        assert len(rows) > 1


class TestSweepCommand:
    def test_single_algorithm(self, graph_csv, truth_csv, capsys):
        exit_code = main(
            ["sweep", str(graph_csv), str(truth_csv), "-a", "UMC"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "UMC" in out
        assert "F1" in out

    def test_all_algorithms(self, graph_csv, truth_csv, capsys):
        main(["sweep", str(graph_csv), str(truth_csv)])
        out = capsys.readouterr().out
        for code in ("CNC", "RSR", "RCA", "BAH", "BMC", "EXC", "KRC", "UMC"):
            assert code in out


class TestExperimentsCommand:
    def test_smoke_profile(self, tmp_path, capsys):
        exit_code = main(
            ["experiments", "--profile", "smoke", "--cache", str(tmp_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "Nemenyi" in out


class TestArtifactStoreFlags:
    def test_all_pipeline_commands_accept_the_flag(self):
        parser = build_parser()
        for argv in (
            ["corpus", "--artifact-store", "store"],
            ["experiments", "--artifact-store", "store"],
            ["sweep", "g.csv", "t.csv", "--artifact-store", "store"],
        ):
            args = parser.parse_args(argv)
            assert str(args.artifact_store) == "store"

    def test_flag_defaults_to_disabled(self):
        args = build_parser().parse_args(["corpus"])
        assert args.artifact_store is None


class TestStoreCommand:
    @pytest.fixture
    def filled_store(self, tmp_path):
        import numpy as np

        from repro.pipeline.store import ArtifactStore, dataset_store_key

        store = ArtifactStore(tmp_path / "artifacts")
        key = dataset_store_key("d1", 0.05, None, 42)
        for n in (1, 2, 3):
            store.save(key, ("graph_ratio", "token", n), np.full(64, float(n)))
        return store

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])

    def test_ls_lists_entries(self, filled_store, capsys):
        exit_code = main(
            ["store", "ls", "--artifact-store", str(filled_store.root)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "3 entries" in out
        assert "graph_ratio" in out
        assert "d1" in out

    def test_gc_honors_budget(self, filled_store, capsys):
        per_entry = filled_store.entries()[0].nbytes
        exit_code = main(
            [
                "store", "gc",
                "--artifact-store", str(filled_store.root),
                "--budget", str(per_entry),
            ]
        )
        assert exit_code == 0
        assert "evicted 2 entries" in capsys.readouterr().out
        assert len(filled_store.entries()) == 1

    def test_purge_empties(self, filled_store, capsys):
        exit_code = main(
            ["store", "purge", "--artifact-store", str(filled_store.root)]
        )
        assert exit_code == 0
        assert "purged 3 entries" in capsys.readouterr().out
        assert filled_store.entries() == []

    def test_ls_empty_store_is_fine(self, tmp_path, capsys):
        exit_code = main(["store", "ls", "--artifact-store", str(tmp_path)])
        assert exit_code == 0
        assert "0 entries" in capsys.readouterr().out

    def test_gc_rejects_garbage_budget_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["store", "gc", "--budget", "huge"])
        assert excinfo.value.code == 2  # argparse usage error
        assert "unparseable size budget" in capsys.readouterr().err

    def test_corpus_reports_store_usage(self, tmp_path, capsys, monkeypatch):
        # Shrink the smoke corpus to one dataset to keep the test fast.
        import dataclasses

        from repro.experiments import SMOKE_CONFIG

        tiny = dataclasses.replace(
            SMOKE_CONFIG,
            corpus=dataclasses.replace(
                SMOKE_CONFIG.corpus, datasets=("d1",), max_pairs=1_000
            ),
        )
        monkeypatch.setattr(
            "repro.experiments.SMOKE_CONFIG", tiny, raising=True
        )
        exit_code = main(
            [
                "corpus",
                "--profile", "smoke",
                "--cache", str(tmp_path / "cache"),
                "--artifact-store", str(tmp_path / "store"),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "corpus ready" in out
        assert "artifact store:" in out


class TestDirtyErCommand:
    def test_smoke_profile(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        exit_code = main(
            ["dirty-er", "--profile", "smoke", "--cache", str(tmp_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Dirty-ER clustering" in out
        for code in ("CC", "MCC", "EMCC", "GECG"):
            assert code in out

    def test_single_algorithm(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        exit_code = main(
            [
                "dirty-er", "--profile", "smoke",
                "--cache", str(tmp_path),
                "--algorithm", "cc",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "CC" in out
        assert "GECG" not in out

    def test_rejects_unknown_algorithm(self, tmp_path, capsys):
        exit_code = main(
            [
                "dirty-er", "--cache", str(tmp_path),
                "--algorithm", "nope",
            ]
        )
        assert exit_code == 2
        assert "unknown dirty-ER algorithm" in capsys.readouterr().err


class TestStoreReadTierFlag:
    def test_pipeline_commands_accept_the_flag(self):
        parser = build_parser()
        for argv in (
            ["corpus", "--artifact-store", "s", "--store-read-tier", "t"],
            ["experiments", "--artifact-store", "s",
             "--store-read-tier", "t"],
            ["dirty-er", "--artifact-store", "s", "--store-read-tier", "t"],
        ):
            args = parser.parse_args(argv)
            assert str(args.store_read_tier) == "t"

    def test_tier_without_store_is_an_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="artifact-store"):
            main(
                [
                    "corpus", "--cache", str(tmp_path),
                    "--store-read-tier", str(tmp_path / "tier"),
                ]
            )

    def test_corpus_reads_through_the_tier(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        tier = tmp_path / "tier"
        assert main(
            [
                "corpus", "--profile", "smoke",
                "--cache", str(tmp_path / "c1"),
                "--artifact-store", str(tier),
            ]
        ) == 0
        tier_files = sorted(p.name for p in tier.iterdir())
        assert main(
            [
                "corpus", "--profile", "smoke",
                "--cache", str(tmp_path / "c2"),
                "--artifact-store", str(tmp_path / "local"),
                "--store-read-tier", str(tier),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "corpus ready" in out
        # Tier untouched; local store stayed empty (every artifact hit).
        assert sorted(p.name for p in tier.iterdir()) == tier_files
        local = tmp_path / "local"
        assert not local.exists() or list(local.iterdir()) == []
