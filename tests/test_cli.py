"""Tests for the command-line interface."""

from __future__ import annotations

import csv

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def graph_csv(tmp_path):
    path = tmp_path / "graph.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["left", "right", "weight"])
        writer.writerows(
            [[0, 0, 0.9], [1, 1, 0.8], [0, 1, 0.3], [2, 2, 0.7]]
        )
    return path


@pytest.fixture
def truth_csv(tmp_path):
    path = tmp_path / "truth.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["left", "right"])
        writer.writerows([[0, 0], [1, 1], [2, 2]])
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_match_defaults(self):
        args = build_parser().parse_args(["match", "g.csv"])
        assert args.algorithm == "UMC"
        assert args.threshold == 0.5

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "g.csv", "-a", "XYZ"])


class TestMatchCommand:
    def test_prints_pairs(self, graph_csv, capsys):
        exit_code = main(["match", str(graph_csv), "-a", "UMC", "-t", "0.5"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "0,0" in out
        assert "1,1" in out
        assert "0,1" not in out  # below-threshold edge

    def test_threshold_filters(self, graph_csv, capsys):
        main(["match", str(graph_csv), "-t", "0.85"])
        out = capsys.readouterr().out
        assert "0,0" in out
        assert "1,1" not in out


class TestGenerateCommand:
    def test_writes_csvs(self, tmp_path, capsys):
        exit_code = main(
            [
                "generate", "d1", "--scale", "0.03",
                "--out", str(tmp_path / "data"),
            ]
        )
        assert exit_code == 0
        assert (tmp_path / "data" / "d1_left.csv").exists()
        assert (tmp_path / "data" / "d1_right.csv").exists()
        truth = (tmp_path / "data" / "d1_truth.csv").read_text()
        assert truth.startswith("left,right")

    def test_generated_files_parse(self, tmp_path):
        main(["generate", "d2", "--scale", "0.03", "--out", str(tmp_path)])
        with (tmp_path / "d2_left.csv").open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "id"
        assert len(rows) > 1


class TestSweepCommand:
    def test_single_algorithm(self, graph_csv, truth_csv, capsys):
        exit_code = main(
            ["sweep", str(graph_csv), str(truth_csv), "-a", "UMC"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "UMC" in out
        assert "F1" in out

    def test_all_algorithms(self, graph_csv, truth_csv, capsys):
        main(["sweep", str(graph_csv), str(truth_csv)])
        out = capsys.readouterr().out
        for code in ("CNC", "RSR", "RCA", "BAH", "BMC", "EXC", "KRC", "UMC"):
            assert code in out


class TestExperimentsCommand:
    def test_smoke_profile(self, tmp_path, capsys):
        exit_code = main(
            ["experiments", "--profile", "smoke", "--cache", str(tmp_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "Nemenyi" in out
