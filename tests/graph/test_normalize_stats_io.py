"""Tests for normalization, statistics and (de)serialization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import SimilarityGraph, graph_stats, min_max_normalize
from repro.graph.io import load_graph, save_graph
from repro.graph.normalize import min_max_normalize_array
from tests.conftest import similarity_graphs


class TestMinMaxNormalize:
    def test_maps_to_unit_interval(self):
        values = np.array([2.0, 4.0, 6.0])
        out = min_max_normalize_array(values)
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_constant_maps_to_ones(self):
        out = min_max_normalize_array(np.array([3.0, 3.0]))
        assert out.tolist() == [1.0, 1.0]

    def test_empty(self):
        out = min_max_normalize_array(np.array([]))
        assert out.size == 0

    def test_graph_normalization_preserves_structure(self):
        g = SimilarityGraph.from_edges(2, 2, [(0, 0, 0.2), (1, 1, 0.8)])
        normalized = min_max_normalize(g)
        assert normalized.n_left == 2
        assert np.array_equal(normalized.left, g.left)
        assert normalized.weight.tolist() == [0.0, 1.0]
        # The input graph is untouched.
        assert g.weight.tolist() == [0.2, 0.8]

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_output_always_in_unit_interval(self, values):
        out = min_max_normalize_array(np.array(values))
        assert out.min() >= 0.0
        assert out.max() <= 1.0

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=2,
            max_size=50,
        )
    )
    def test_order_preserved(self, values):
        # Weak monotonicity: scaling can collapse near-equal values
        # (float underflow) but must never invert an ordering.
        out = min_max_normalize_array(np.array(values))
        for i in range(len(values)):
            for j in range(len(values)):
                if values[i] <= values[j]:
                    assert out[i] <= out[j] + 1e-12


class TestGraphStats:
    def test_basic(self):
        g = SimilarityGraph.from_edges(
            2, 3, [(0, 0, 0.2), (0, 1, 0.4), (1, 2, 0.9)]
        )
        stats = graph_stats(g)
        assert stats.n_edges == 3
        assert stats.density == pytest.approx(0.5)
        assert stats.min_weight == 0.2
        assert stats.max_weight == 0.9
        assert stats.mean_weight == pytest.approx(0.5)
        assert stats.median_weight == pytest.approx(0.4)
        assert stats.isolated_left == 0
        assert stats.isolated_right == 0
        assert stats.normalized_size == stats.density

    def test_isolated_counts(self):
        g = SimilarityGraph.from_edges(3, 4, [(0, 0, 0.5)])
        stats = graph_stats(g)
        assert stats.isolated_left == 2
        assert stats.isolated_right == 3

    def test_empty_graph(self):
        g = SimilarityGraph.from_edges(3, 4, [])
        stats = graph_stats(g)
        assert stats.n_edges == 0
        assert stats.mean_weight == 0.0
        assert stats.isolated_left == 3
        assert stats.isolated_right == 4


class TestIO:
    def test_roundtrip(self, tmp_path):
        g = SimilarityGraph.from_edges(
            3, 2, [(0, 0, 0.25), (2, 1, 0.75)], name="demo"
        )
        g.metadata = {"dataset": "d1", "family": "syntactic"}
        path = tmp_path / "graph.npz"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.n_left == 3
        assert loaded.n_right == 2
        assert loaded.name == "demo"
        assert loaded.metadata == g.metadata
        assert sorted(loaded.edges()) == sorted(g.edges())

    def test_roundtrip_empty(self, tmp_path):
        g = SimilarityGraph.from_edges(0, 0, [])
        path = tmp_path / "empty.npz"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.n_edges == 0

    def test_creates_parent_directories(self, tmp_path):
        g = SimilarityGraph.from_edges(1, 1, [(0, 0, 0.5)])
        path = tmp_path / "deep" / "nested" / "graph.npz"
        save_graph(g, path)
        assert path.exists()

    @given(similarity_graphs(max_left=5, max_right=5, max_edges=10))
    def test_roundtrip_property(self, graph):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "g.npz"
            save_graph(graph, path)
            loaded = load_graph(path)
        assert loaded.n_left == graph.n_left
        assert loaded.n_right == graph.n_right
        assert np.array_equal(loaded.weight, graph.weight)
