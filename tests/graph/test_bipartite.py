"""Unit tests for the SimilarityGraph data structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given

from repro.graph import SimilarityGraph
from tests.conftest import similarity_graphs


class TestConstruction:
    def test_from_edges(self):
        g = SimilarityGraph.from_edges(2, 3, [(0, 1, 0.5), (1, 2, 0.75)])
        assert g.n_left == 2
        assert g.n_right == 3
        assert g.n_edges == 2
        assert g.n_nodes == 5
        assert list(g.edges()) == [(0, 1, 0.5), (1, 2, 0.75)]

    def test_from_edges_empty(self):
        g = SimilarityGraph.from_edges(4, 4, [])
        assert g.n_edges == 0
        assert g.density == 0.0

    def test_from_matrix_drops_zeros(self):
        matrix = np.array([[0.0, 0.4], [0.9, 0.0]])
        g = SimilarityGraph.from_matrix(matrix)
        assert sorted(g.edges()) == [(0, 1, 0.4), (1, 0, 0.9)]

    def test_from_matrix_keep_zero(self):
        matrix = np.array([[0.0, 0.4], [0.9, 0.0]])
        g = SimilarityGraph.from_matrix(matrix, keep_zero=True)
        assert g.n_edges == 4

    def test_from_matrix_rejects_non_2d(self):
        with pytest.raises(ValueError):
            SimilarityGraph.from_matrix(np.zeros(3))

    def test_rejects_out_of_range_left(self):
        with pytest.raises(ValueError):
            SimilarityGraph.from_edges(2, 2, [(2, 0, 0.5)])

    def test_rejects_out_of_range_right(self):
        with pytest.raises(ValueError):
            SimilarityGraph.from_edges(2, 2, [(0, 5, 0.5)])

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            SimilarityGraph.from_edges(2, 2, [(0, 0, -0.1)])

    def test_rejects_weight_above_one(self):
        with pytest.raises(ValueError):
            SimilarityGraph.from_edges(2, 2, [(0, 0, 1.5)])

    def test_rejects_nan_weight(self):
        with pytest.raises(ValueError):
            SimilarityGraph.from_edges(2, 2, [(0, 0, float("nan"))])

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            SimilarityGraph(2, 2, [0, 1], [0], [0.5, 0.6])

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            SimilarityGraph(-1, 2, [], [], [])


class TestProperties:
    def test_density(self):
        g = SimilarityGraph.from_edges(2, 2, [(0, 0, 0.5)])
        assert g.density == 0.25

    def test_cartesian_size(self):
        g = SimilarityGraph.from_edges(3, 7, [])
        assert g.cartesian_size == 21

    def test_len_is_edge_count(self):
        g = SimilarityGraph.from_edges(2, 2, [(0, 0, 0.5), (1, 1, 0.5)])
        assert len(g) == 2


class TestPrune:
    def test_strict_by_default(self):
        g = SimilarityGraph.from_edges(
            2, 2, [(0, 0, 0.5), (0, 1, 0.6), (1, 1, 0.4)]
        )
        pruned = g.prune(0.5)
        assert sorted(pruned.edges()) == [(0, 1, 0.6)]

    def test_inclusive(self):
        g = SimilarityGraph.from_edges(2, 2, [(0, 0, 0.5), (1, 1, 0.4)])
        pruned = g.prune(0.5, inclusive=True)
        assert sorted(pruned.edges()) == [(0, 0, 0.5)]

    def test_prune_keeps_sizes(self):
        g = SimilarityGraph.from_edges(5, 6, [(0, 0, 0.3)])
        pruned = g.prune(0.9)
        assert pruned.n_left == 5
        assert pruned.n_right == 6
        assert pruned.n_edges == 0

    @given(similarity_graphs())
    def test_prune_monotone(self, graph):
        low = graph.prune(0.2)
        high = graph.prune(0.8)
        assert high.n_edges <= low.n_edges <= graph.n_edges


class TestAdjacency:
    def test_left_adjacency_sorted_desc(self):
        g = SimilarityGraph.from_edges(
            1, 3, [(0, 0, 0.2), (0, 1, 0.9), (0, 2, 0.5)]
        )
        assert g.left_adjacency()[0] == [(1, 0.9), (2, 0.5), (0, 0.2)]

    def test_right_adjacency_sorted_desc(self):
        g = SimilarityGraph.from_edges(
            3, 1, [(0, 0, 0.2), (1, 0, 0.9), (2, 0, 0.5)]
        )
        assert g.right_adjacency()[0] == [(1, 0.9), (2, 0.5), (0, 0.2)]

    def test_tie_break_by_index(self):
        g = SimilarityGraph.from_edges(
            1, 3, [(0, 2, 0.5), (0, 0, 0.5), (0, 1, 0.5)]
        )
        assert g.left_adjacency()[0] == [(0, 0.5), (1, 0.5), (2, 0.5)]

    def test_isolated_nodes_have_empty_lists(self):
        g = SimilarityGraph.from_edges(3, 3, [(0, 0, 0.5)])
        adjacency = g.left_adjacency()
        assert adjacency[1] == []
        assert adjacency[2] == []

    @given(similarity_graphs())
    def test_adjacency_covers_all_edges(self, graph):
        total = sum(len(lst) for lst in graph.left_adjacency())
        assert total == graph.n_edges
        total = sum(len(lst) for lst in graph.right_adjacency())
        assert total == graph.n_edges


class TestAverageNodeWeights:
    def test_simple(self):
        g = SimilarityGraph.from_edges(
            2, 2, [(0, 0, 0.4), (0, 1, 0.8), (1, 1, 0.6)]
        )
        left_avg, right_avg = g.average_node_weights()
        assert left_avg[0] == pytest.approx(0.6)
        assert left_avg[1] == pytest.approx(0.6)
        assert right_avg[0] == pytest.approx(0.4)
        assert right_avg[1] == pytest.approx(0.7)

    def test_isolated_node_is_zero(self):
        g = SimilarityGraph.from_edges(2, 1, [(0, 0, 0.4)])
        left_avg, _ = g.average_node_weights()
        assert left_avg[1] == 0.0


class TestTransformations:
    def test_swap_sides(self):
        g = SimilarityGraph.from_edges(2, 3, [(1, 2, 0.7)])
        swapped = g.swap_sides()
        assert swapped.n_left == 3
        assert swapped.n_right == 2
        assert list(swapped.edges()) == [(2, 1, 0.7)]

    def test_swap_is_involution(self):
        g = SimilarityGraph.from_edges(2, 3, [(1, 2, 0.7), (0, 0, 0.3)])
        double = g.swap_sides().swap_sides()
        assert sorted(double.edges()) == sorted(g.edges())

    def test_to_dense_roundtrip(self):
        matrix = np.array([[0.0, 0.4], [0.9, 0.1]])
        g = SimilarityGraph.from_matrix(matrix)
        assert np.allclose(g.to_dense(), matrix)

    def test_subgraph_by_edge_indices(self):
        g = SimilarityGraph.from_edges(
            2, 2, [(0, 0, 0.5), (0, 1, 0.6), (1, 1, 0.7)]
        )
        sub = g.subgraph_by_edge_indices(np.array([0, 2]))
        assert sorted(sub.edges()) == [(0, 0, 0.5), (1, 1, 0.7)]
