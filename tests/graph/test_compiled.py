"""Tests for the compiled graph layer (repro.graph.compiled/selection)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.graph import (
    CompiledGraph,
    SimilarityGraph,
    compile_graph,
    figure1_graph,
    prefix_length,
    selection_mask,
)
from repro.graph.io import load_graph, save_graph


def random_graph(seed=0, n_left=14, n_right=11, m=80, decimals=2):
    """Random graph with heavy weight ties and duplicate parallel edges."""
    rng = np.random.default_rng(seed)
    weight = np.maximum(np.round(rng.random(m), decimals), 10.0 ** -decimals)
    return SimilarityGraph(
        n_left,
        n_right,
        rng.integers(0, n_left, m),
        rng.integers(0, n_right, m),
        weight,
    )


def reference_adjacency(graph, side):
    """The pre-compiled adjacency construction, kept as the oracle."""
    if side == "left":
        n, keys, neighbours = graph.n_left, graph.left, graph.right
    else:
        n, keys, neighbours = graph.n_right, graph.right, graph.left
    adjacency = [[] for _ in range(n)]
    order = np.lexsort((neighbours, -graph.weight))
    for idx in order:
        adjacency[keys[idx]].append(
            (int(neighbours[idx]), float(graph.weight[idx]))
        )
    return adjacency


class TestSelectionHelpers:
    @pytest.mark.parametrize("inclusive", [False, True])
    @pytest.mark.parametrize("threshold", [0.0, 0.35, 0.5, 1.0])
    def test_prefix_length_equals_mask_count(self, threshold, inclusive):
        graph = random_graph(seed=3)
        mask = selection_mask(graph.weight, threshold, inclusive)
        ascending = np.sort(graph.weight)
        assert prefix_length(ascending, threshold, inclusive) == int(
            mask.sum()
        )

    def test_prune_matches_mask_semantics(self):
        graph = figure1_graph()
        strict = graph.prune(0.5)
        inclusive = graph.prune(0.5, inclusive=True)
        assert strict.n_edges == int((graph.weight > 0.5).sum())
        assert inclusive.n_edges == int((graph.weight >= 0.5).sum())


class TestCompiledGraph:
    def test_compile_is_cached_on_graph(self):
        graph = random_graph()
        assert graph.compiled() is graph.compiled()
        assert compile_graph(graph) is graph.compiled()
        graph.release_compiled()
        assert isinstance(graph.compiled(), CompiledGraph)

    def test_descending_permutation_with_umc_tie_order(self):
        graph = random_graph(seed=7)
        compiled = graph.compiled()
        order = np.lexsort((graph.right, graph.left, -graph.weight))
        assert np.array_equal(compiled.order, order)
        assert np.array_equal(compiled.weight_sorted, graph.weight[order])
        ascending = np.sort(graph.weight)
        assert np.array_equal(compiled.weight_ascending, ascending)

    @pytest.mark.parametrize("side", ["left", "right"])
    def test_adjacency_matches_reference(self, side):
        graph = random_graph(seed=11)
        lists = getattr(graph, f"{side}_adjacency")()
        assert lists == reference_adjacency(graph, side)

    def test_merged_adjacency_offsets_right_side(self):
        graph = random_graph(seed=5, n_left=6, n_right=4, m=20)
        merged = graph.compiled().merged_adjacency()
        left_ref = reference_adjacency(graph, "left")
        right_ref = reference_adjacency(graph, "right")
        assert merged[: graph.n_left] == [
            [(graph.n_left + j, w) for j, w in lst] for lst in left_ref
        ]
        assert merged[graph.n_left :] == right_ref

    def test_empty_graph_compiles(self):
        graph = SimilarityGraph.from_edges(4, 3, [])
        compiled = graph.compiled()
        assert compiled.select(0.5).count == 0
        assert compiled.left_adjacency() == [[]] * 4
        assert compiled.merged_adjacency() == [[]] * 7

    def test_average_node_weights_cached_and_equal(self):
        graph = random_graph(seed=13)
        compiled = graph.compiled()
        left_ref, right_ref = graph.average_node_weights()
        left, right = compiled.average_node_weights()
        assert np.array_equal(left, left_ref)
        assert np.array_equal(right, right_ref)
        assert compiled.average_node_weights()[0] is left


class TestEdgeSelection:
    @pytest.mark.parametrize("inclusive", [False, True])
    def test_selection_equals_prune(self, inclusive):
        graph = random_graph(seed=17)
        compiled = graph.compiled()
        for threshold in (0.0, 0.25, 0.5, 0.77, 1.0):
            selection = compiled.select(threshold, inclusive)
            pruned = graph.prune(threshold, inclusive=inclusive)
            assert selection.count == pruned.n_edges
            assert sorted(
                zip(
                    selection.left.tolist(),
                    selection.right.tolist(),
                    selection.weight.tolist(),
                )
            ) == sorted(zip(
                pruned.left.tolist(),
                pruned.right.tolist(),
                pruned.weight.tolist(),
            ))

    def test_selection_is_cached_per_threshold(self):
        compiled = random_graph().compiled()
        assert compiled.select(0.4) is compiled.select(0.4)
        assert compiled.select(0.4) is not compiled.select(0.4, True)

    def test_counts_match_thresholded_adjacency(self):
        graph = random_graph(seed=19)
        compiled = graph.compiled()
        lists = compiled.left_adjacency()
        for threshold in (0.1, 0.5, 0.9):
            counts = compiled.select(threshold).left_counts()
            expected = [
                len([w for _, w in lst if w > threshold]) for lst in lists
            ]
            assert counts == expected
            # The selected entries are each list's prefix.
            for lst, count in zip(lists, counts):
                assert all(w > threshold for _, w in lst[:count])
                assert all(w <= threshold for _, w in lst[count:])

    def test_to_graph_bit_identical_to_prune(self):
        graph = random_graph(seed=23)
        graph.name = "dup-heavy"
        graph.metadata = {"dataset": "d1", "function": "jaccard"}
        selection = graph.compiled().select(0.5)
        pruned = graph.prune(0.5)
        regenerated = selection.to_graph()
        assert np.array_equal(regenerated.left, pruned.left)
        assert np.array_equal(regenerated.right, pruned.right)
        assert np.array_equal(regenerated.weight, pruned.weight)
        assert regenerated.name == "dup-heavy"
        assert regenerated.metadata == graph.metadata


class TestMetadataPreservation:
    """`name` and `metadata` must survive io round-trips and views."""

    def make(self):
        graph = random_graph(seed=29)
        graph.name = "d3:cosine_tokens"
        graph.metadata = {
            "dataset": "d3",
            "family": "schema-based",
            "function": "cosine_tokens",
        }
        return graph

    def test_io_roundtrip_preserves_provenance(self, tmp_path):
        graph = self.make()
        path = tmp_path / "graph.npz"
        save_graph(graph, path)
        loaded = load_graph(path)
        assert loaded.name == graph.name
        assert loaded.metadata == graph.metadata

    def test_io_roundtrip_after_prune_and_compile(self, tmp_path):
        graph = self.make()
        graph.compiled()  # the cache must not leak into the file
        pruned = graph.prune(0.3)
        path = tmp_path / "pruned.npz"
        save_graph(pruned, path)
        loaded = load_graph(path)
        assert loaded.name == graph.name
        assert loaded.metadata == graph.metadata

    def test_views_preserve_provenance(self):
        graph = self.make()
        compiled = graph.compiled()
        assert compiled.name == graph.name
        assert compiled.metadata is graph.metadata
        assert graph.prune(0.5).metadata == graph.metadata
        assert graph.swap_sides().metadata == graph.metadata
        assert compiled.select(0.5).to_graph().metadata == graph.metadata

    def test_pickle_drops_compiled_cache(self):
        graph = self.make()
        graph.compiled()
        clone = pickle.loads(pickle.dumps(graph))
        assert clone._compiled is None
        assert clone.name == graph.name
        assert clone.metadata == graph.metadata
        assert np.array_equal(clone.weight, graph.weight)
