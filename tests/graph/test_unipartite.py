"""Unipartite (Dirty-ER) graph substrate tests.

Covers the :class:`UnipartiteGraph` data structure, its compiled form
(one descending edge sort, symmetric CSR, O(log m) inclusive threshold
selections routed through :mod:`repro.graph.selection`), the self-join
matrix builder and the npz (de)serialization.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.graph.io import load_unipartite_graph, save_unipartite_graph
from repro.graph.unipartite import (
    UnipartiteGraph,
    matrix_to_unipartite_graph,
)


@pytest.fixture
def small():
    return UnipartiteGraph.from_edges(
        6,
        [
            (0, 1, 0.9),
            (2, 1, 0.85),  # canonicalized to (1, 2)
            (0, 2, 0.9),
            (3, 4, 0.8),
            (2, 3, 0.1),
        ],
        name="small",
    )


class TestConstruction:
    def test_canonical_orientation(self, small):
        assert (small.u < small.v).all()
        assert small.n_edges == 5

    def test_last_write_wins_like_networkx(self):
        graph = UnipartiteGraph.from_edges(
            3, [(0, 1, 0.2), (1, 0, 0.7)]
        )
        assert graph.n_edges == 1
        assert graph.weight[0] == 0.7

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self loop"):
            UnipartiteGraph.from_edges(2, [(1, 1, 0.5)])

    def test_rejects_non_canonical_arrays(self):
        with pytest.raises(ValueError, match="canonical"):
            UnipartiteGraph(3, [2], [1], [0.5])

    def test_rejects_duplicate_edges(self):
        with pytest.raises(ValueError, match="duplicate"):
            UnipartiteGraph(3, [0, 0], [1, 1], [0.5, 0.6])

    def test_rejects_out_of_range_weight(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            UnipartiteGraph(3, [0], [1], [1.5])

    def test_density(self, small):
        assert small.density == pytest.approx(5 / 15)

    def test_networkx_roundtrip(self, small):
        back = UnipartiteGraph.from_networkx(small.to_networkx())
        assert back.n_nodes == small.n_nodes
        assert sorted(back.edges()) == sorted(small.edges())

    def test_from_networkx_requires_dense_int_nodes(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edge(3, 7, weight=0.5)
        with pytest.raises(ValueError, match="0 .. n-1"):
            UnipartiteGraph.from_networkx(graph)

    def test_pickle_drops_compiled(self, small):
        small.compiled()
        clone = pickle.loads(pickle.dumps(small))
        assert clone._compiled is None
        assert sorted(clone.edges()) == sorted(small.edges())


class TestCompiled:
    def test_descending_weight_with_ascending_ties(self, small):
        compiled = small.compiled()
        weights = compiled.weight_sorted
        assert (np.diff(weights) <= 0).all()
        # (0, 1) and (0, 2) tie at 0.9; ascending (u, v) breaks it.
        assert (int(compiled.u_sorted[0]), int(compiled.v_sorted[0])) == (0, 1)
        assert (int(compiled.u_sorted[1]), int(compiled.v_sorted[1])) == (0, 2)

    def test_compiled_is_cached(self, small):
        assert small.compiled() is small.compiled()
        small.release_compiled()
        assert small._compiled is None

    def test_symmetric_csr(self, small):
        compiled = small.compiled()
        assert compiled.indptr[-1] == 2 * small.n_edges
        # Node 2's run: neighbours 0 (0.9), 1 (0.85), 3 (0.1).
        start, stop = compiled.indptr[2], compiled.indptr[3]
        assert compiled.neighbors[start:stop].tolist() == [0, 1, 3]
        assert compiled.neighbor_weights[start:stop].tolist() == [
            0.9, 0.85, 0.1,
        ]

    @pytest.mark.parametrize("threshold", [0.0, 0.1, 0.5, 0.85, 0.9, 1.0])
    def test_selection_matches_prune(self, small, threshold):
        selection = small.compiled().select(threshold, inclusive=True)
        pruned = small.prune(threshold, inclusive=True)
        assert selection.count == pruned.n_edges
        assert sorted(zip(selection.u, selection.v)) == sorted(
            zip(pruned.u, pruned.v)
        )

    def test_selection_cached_per_threshold(self, small):
        compiled = small.compiled()
        assert compiled.select(0.5) is compiled.select(0.5)
        assert compiled.select(0.5) is not compiled.select(0.5, False)

    def test_adjacency_bitsets(self, small):
        selection = small.compiled().select(0.5, inclusive=True)
        bits = selection.adjacency_bitsets()
        assert bits[0] == (1 << 1) | (1 << 2)
        assert bits[3] == (1 << 4)  # the 0.1 edge (2, 3) is below 0.5
        assert bits[5] == 0

    def test_component_labels(self, small):
        selection = small.compiled().select(0.5, inclusive=True)
        labels = selection.component_labels()
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert len({labels[0], labels[3], labels[5]}) == 3

    def test_empty_graph(self):
        graph = UnipartiteGraph.from_edges(4, [])
        selection = graph.compiled().select(0.5)
        assert selection.count == 0
        assert selection.component_labels().tolist() == [0, 1, 2, 3]


class TestMatrixBuilder:
    def test_strict_upper_triangle(self):
        matrix = np.array(
            [
                [1.0, 0.8, 0.0],
                [0.7, 1.0, 0.4],
                [0.2, 0.0, 1.0],
            ]
        )
        graph = matrix_to_unipartite_graph(matrix, normalize=False)
        # Only (0,1)=0.8 and (1,2)=0.4 — diagonal and lower dropped.
        assert sorted(zip(graph.u, graph.v)) == [(0, 1), (1, 2)]
        assert sorted(graph.weight.tolist()) == [0.4, 0.8]

    def test_min_max_normalization(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1], matrix[0, 2], matrix[1, 2] = 0.2, 0.6, 0.4
        graph = matrix_to_unipartite_graph(matrix)
        assert sorted(graph.weight.tolist()) == pytest.approx(
            [0.0, 0.5, 1.0]
        )

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            matrix_to_unipartite_graph(np.zeros((2, 3)))

    def test_metadata_attached(self):
        graph = matrix_to_unipartite_graph(
            np.zeros((2, 2)), metadata={"dataset": "d1"}
        )
        assert graph.metadata == {"dataset": "d1"}


class TestIo:
    def test_roundtrip(self, small, tmp_path):
        small.metadata = {"dataset": "d1", "function": "f"}
        path = tmp_path / "graph.npz"
        save_unipartite_graph(small, path)
        loaded = load_unipartite_graph(path)
        assert loaded.n_nodes == small.n_nodes
        assert loaded.name == small.name
        assert loaded.metadata == small.metadata
        assert np.array_equal(loaded.u, small.u)
        assert np.array_equal(loaded.v, small.v)
        assert np.array_equal(loaded.weight, small.weight)

    def test_rejects_bipartite_file(self, tmp_path):
        from repro.graph.bipartite import SimilarityGraph
        from repro.graph.io import save_graph

        path = tmp_path / "bipartite.npz"
        save_graph(
            SimilarityGraph.from_edges(2, 2, [(0, 1, 0.5)]), path
        )
        with pytest.raises(ValueError, match="unipartite"):
            load_unipartite_graph(path)
