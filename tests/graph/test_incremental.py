"""Tests for the incremental compiled-graph layer (repro.graph.incremental).

The load-bearing property is *batch equivalence*: a compiled graph
mutated in place by the delta-merge operators must be bit-identical —
edge permutation, CSR adjacency, provenance ``order`` and cached
threshold selections — to a fresh compile of the same edge set.  The
hypothesis properties below prove it for random insert and
insert-then-delete batches, including weight ties and (bipartite)
duplicate parallel edges.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bipartite import SimilarityGraph
from repro.graph.compiled import CompiledGraph
from repro.graph.incremental import (
    add_left_nodes,
    add_right_nodes,
    add_uni_nodes,
    delete_edges,
    delete_uni_edges,
    insert_edges,
    insert_uni_edges,
)
from repro.graph.unipartite import CompiledUnipartiteGraph, UnipartiteGraph

WEIGHTS = (0.1, 0.25, 0.5, 0.75, 0.9)
THRESHOLDS = ((0.25, True), (0.25, False), (0.5, True), (0.8, False))

bipartite_edges = st.lists(
    st.tuples(
        st.integers(0, 5), st.integers(0, 4), st.sampled_from(WEIGHTS)
    ),
    max_size=25,
)


def bipartite(edges) -> SimilarityGraph:
    left = [e[0] for e in edges]
    right = [e[1] for e in edges]
    weight = [e[2] for e in edges]
    return SimilarityGraph(6, 5, left, right, weight)


def assert_bipartite_equal(
    actual: CompiledGraph, expected: CompiledGraph
) -> None:
    for name in (
        "order",
        "left_sorted",
        "right_sorted",
        "weight_sorted",
        "weight_ascending",
        "left_indptr",
        "left_neighbors",
        "left_weights",
        "right_indptr",
        "right_neighbors",
        "right_weights",
    ):
        np.testing.assert_array_equal(
            getattr(actual, name), getattr(expected, name), err_msg=name
        )
    assert actual.n_edges == expected.n_edges
    assert (actual.n_left, actual.n_right) == (
        expected.n_left,
        expected.n_right,
    )


def assert_unipartite_equal(
    actual: CompiledUnipartiteGraph, expected: CompiledUnipartiteGraph
) -> None:
    for name in (
        "order",
        "u_sorted",
        "v_sorted",
        "weight_sorted",
        "weight_ascending",
        "indptr",
        "neighbors",
        "neighbor_weights",
    ):
        np.testing.assert_array_equal(
            getattr(actual, name), getattr(expected, name), err_msg=name
        )
    assert actual.n_edges == expected.n_edges
    assert actual.n_nodes == expected.n_nodes


def assert_selections_fresh(compiled) -> None:
    """Every cached selection must agree with a from-scratch count and
    per-node breakdown."""
    for (threshold, inclusive), selection in compiled._selections.items():
        fresh = type(compiled)(compiled.source)
        expected = fresh.select(threshold, inclusive)
        assert selection.count == expected.count, (threshold, inclusive)
        if isinstance(compiled, CompiledGraph):
            assert selection.left_counts() == expected.left_counts()
            assert selection.right_counts() == expected.right_counts()


class TestBipartiteIncremental:
    @settings(max_examples=60, deadline=None)
    @given(base=bipartite_edges, delta=bipartite_edges)
    def test_insert_matches_fresh_compile(self, base, delta):
        graph = bipartite(base)
        compiled = graph.compiled()
        for threshold, inclusive in THRESHOLDS:
            compiled.select(threshold, inclusive)
        insert_edges(
            compiled,
            [e[0] for e in delta],
            [e[1] for e in delta],
            [e[2] for e in delta],
        )
        fresh = CompiledGraph(bipartite(base + delta))
        assert_bipartite_equal(compiled, fresh)
        assert_selections_fresh(compiled)

    @settings(max_examples=60, deadline=None)
    @given(base=bipartite_edges, delta=bipartite_edges)
    def test_insert_then_delete_round_trips(self, base, delta):
        delta = sorted(set(delta))  # the delete delta must be duplicate-free
        graph = bipartite(base)
        compiled = graph.compiled()
        snapshot = CompiledGraph(bipartite(base))
        for threshold, inclusive in THRESHOLDS:
            compiled.select(threshold, inclusive)
        lefts = [e[0] for e in delta]
        rights = [e[1] for e in delta]
        weights = [e[2] for e in delta]
        insert_edges(compiled, lefts, rights, weights)
        delete_edges(compiled, lefts, rights, weights)

        # Bit-equality with a fresh compile of the mutated source...
        assert_bipartite_equal(compiled, CompiledGraph(compiled.source))
        assert_selections_fresh(compiled)
        # ...and (duplicates aside, which may swap provenance slots)
        # the sorted arrays, CSR and selections match the original.
        for name in (
            "left_sorted",
            "right_sorted",
            "weight_sorted",
            "weight_ascending",
            "left_indptr",
            "left_neighbors",
            "left_weights",
            "right_indptr",
            "right_neighbors",
            "right_weights",
        ):
            np.testing.assert_array_equal(
                getattr(compiled, name), getattr(snapshot, name),
                err_msg=name,
            )

    def test_uncrossed_selection_keeps_lazy_caches(self):
        graph = bipartite([(0, 0, 0.9), (1, 1, 0.5), (2, 2, 0.25)])
        compiled = graph.compiled()
        high = compiled.select(0.75, inclusive=False)
        low = compiled.select(0.1, inclusive=False)
        high_counts = high.left_counts()
        low_counts = low.left_counts()
        insert_edges(compiled, [3], [3], [0.5])
        # The 0.5 delta never enters the w > 0.75 prefix: the cached
        # per-node lists must survive untouched (same object).
        assert high.left_counts() is high_counts
        assert high.count == 1
        # The crossed selection re-derives.
        assert low.left_counts() is not low_counts
        assert low.count == 4

    def test_delete_missing_edge_raises(self):
        compiled = bipartite([(0, 0, 0.5)]).compiled()
        with pytest.raises(ValueError, match="not present"):
            delete_edges(compiled, [0], [0], [0.75])
        with pytest.raises(ValueError, match="not in graph"):
            delete_edges(compiled, [1], [1])

    def test_delete_resolves_weights_from_csr(self):
        compiled = bipartite([(0, 0, 0.5), (0, 1, 0.9)]).compiled()
        delete_edges(compiled, [0], [1])
        assert_bipartite_equal(
            compiled, CompiledGraph(bipartite([(0, 0, 0.5)]))
        )

    def test_node_growth_then_insert(self):
        compiled = bipartite([(0, 0, 0.5)]).compiled()
        selection = compiled.select(0.25, inclusive=True)
        assert selection.left_counts() == [1, 0, 0, 0, 0, 0]
        add_left_nodes(compiled, 2)
        add_right_nodes(compiled, 1)
        insert_edges(compiled, [7], [5], [0.75])
        fresh = CompiledGraph(
            SimilarityGraph(8, 6, [0, 7], [0, 5], [0.5, 0.75])
        )
        assert_bipartite_equal(compiled, fresh)
        assert selection.left_counts() == [1, 0, 0, 0, 0, 0, 0, 1]

    def test_rejects_out_of_range_endpoints(self):
        compiled = bipartite([(0, 0, 0.5)]).compiled()
        with pytest.raises(ValueError, match="out of range"):
            insert_edges(compiled, [6], [0], [0.5])


def unipartite_parts(draw):
    pairs = [(u, v) for u in range(7) for v in range(u + 1, 7)]
    chosen = draw(
        st.lists(
            st.tuples(
                st.sampled_from(pairs),
                st.sampled_from(WEIGHTS),
                st.booleans(),
            ),
            max_size=len(pairs),
            unique_by=lambda entry: entry[0],
        )
    )
    base = [(u, v, w) for (u, v), w, in_base in chosen if in_base]
    delta = [(u, v, w) for (u, v), w, in_base in chosen if not in_base]
    return base, delta


uni_splits = st.composite(unipartite_parts)()


def uni(edges) -> UnipartiteGraph:
    u = [e[0] for e in edges]
    v = [e[1] for e in edges]
    w = [e[2] for e in edges]
    return UnipartiteGraph(7, u, v, w)


class TestUnipartiteIncremental:
    @settings(max_examples=60, deadline=None)
    @given(split=uni_splits)
    def test_insert_matches_fresh_compile(self, split):
        base, delta = split
        compiled = uni(base).compiled()
        for threshold, inclusive in THRESHOLDS:
            compiled.select(threshold, inclusive)
        insert_uni_edges(
            compiled,
            [e[0] for e in delta],
            [e[1] for e in delta],
            [e[2] for e in delta],
        )
        fresh = CompiledUnipartiteGraph(uni(base + delta))
        assert_unipartite_equal(compiled, fresh)
        assert_selections_fresh(compiled)

    @settings(max_examples=60, deadline=None)
    @given(split=uni_splits)
    def test_insert_then_delete_round_trips(self, split):
        base, delta = split
        compiled = uni(base).compiled()
        for threshold, inclusive in THRESHOLDS:
            compiled.select(threshold, inclusive)
        us = [e[0] for e in delta]
        vs = [e[1] for e in delta]
        ws = [e[2] for e in delta]
        insert_uni_edges(compiled, us, vs, ws)
        delete_uni_edges(compiled, us, vs, ws)
        assert_unipartite_equal(compiled, CompiledUnipartiteGraph(uni(base)))
        assert_selections_fresh(compiled)

    @settings(max_examples=40, deadline=None)
    @given(split=uni_splits)
    def test_gecg_base_maintained_incrementally(self, split):
        from repro.extensions.dirty_er import _gecg_base

        base, delta = split
        compiled = uni(base).compiled()
        _gecg_base(compiled)  # prime the triangle cache
        insert_uni_edges(
            compiled,
            [e[0] for e in delta],
            [e[1] for e in delta],
            [e[2] for e in delta],
        )
        patched = compiled.kernel_cache["gecg_base"]
        fresh = _gecg_base(CompiledUnipartiteGraph(uni(base + delta)))
        # Canonical edge order and weights match exactly.
        for a, b in zip(patched[:3], fresh[:3]):
            np.testing.assert_array_equal(a, b)
        # Incidence entries may be appended in a different order; the
        # triangle multiset (and hence every bincount gain) is equal.
        patched_tris = sorted(
            zip(*(np.sort(np.stack(patched[3:]), axis=0).tolist()))
        )
        fresh_tris = sorted(
            zip(*(np.sort(np.stack(fresh[3:]), axis=0).tolist()))
        )
        assert patched_tris == fresh_tris

    def test_insert_duplicate_edge_raises(self):
        compiled = uni([(0, 1, 0.5)]).compiled()
        with pytest.raises(ValueError, match="already in graph"):
            insert_uni_edges(compiled, [1], [0], [0.75])

    def test_delete_resolves_weights_from_csr(self):
        compiled = uni([(0, 1, 0.5), (1, 2, 0.9)]).compiled()
        delete_uni_edges(compiled, [2], [1])
        assert_unipartite_equal(
            compiled, CompiledUnipartiteGraph(uni([(0, 1, 0.5)]))
        )

    def test_node_growth_then_insert(self):
        compiled = uni([(0, 1, 0.5)]).compiled()
        add_uni_nodes(compiled, 3)
        insert_uni_edges(compiled, [9], [8], [0.75])
        fresh = CompiledUnipartiteGraph(
            UnipartiteGraph(10, [0, 8], [1, 9], [0.5, 0.75])
        )
        assert_unipartite_equal(compiled, fresh)
