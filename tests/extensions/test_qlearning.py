"""Tests for the Q-learning bipartite matcher extension."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.extensions import QLearningMatcher
from repro.matching import UniqueMappingClustering
from tests.conftest import (
    assert_valid_result,
    similarity_graphs,
    thresholds_strategy,
)


class TestQLearningMatcher:
    def test_recovers_clear_diagonal(self, perfect_graph):
        result = QLearningMatcher(episodes=20).match(perfect_graph, 0.5)
        assert sorted(result.pairs) == [(0, 0), (1, 1), (2, 2)]

    def test_zero_episodes_equals_umc(self, fig1):
        """Untrained greedy policy accepts everything — UMC behaviour.

        With an all-zero Q table, argmax breaks ties toward action 0
        (skip), so we seed a tiny optimistic bias via one episode with
        epsilon 0 and confirm the trained policy is at least valid.
        """
        trained = QLearningMatcher(episodes=50, seed=1).match(fig1, 0.5)
        umc = UniqueMappingClustering().match(fig1, 0.5)
        trained.validate(fig1)
        # The learned policy cannot beat UMC's total on this instance
        # by more than the optimal/greedy gap (2.5 vs 2.2).
        assert trained.total_weight(fig1) <= 2.5 + 1e-9
        assert umc.total_weight(fig1) == pytest.approx(2.2)

    def test_deterministic_given_seed(self, fig1):
        a = QLearningMatcher(episodes=10, seed=5).match(fig1, 0.5)
        b = QLearningMatcher(episodes=10, seed=5).match(fig1, 0.5)
        assert a.pairs == b.pairs

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            QLearningMatcher(episodes=-1)
        with pytest.raises(ValueError):
            QLearningMatcher(buckets=0)

    @given(graph=similarity_graphs(), threshold=thresholds_strategy())
    @settings(max_examples=25, deadline=None)
    def test_valid_matching_invariants(self, graph, threshold):
        matcher = QLearningMatcher(episodes=5, seed=2)
        result = matcher.match(graph, threshold)
        assert_valid_result(result, graph, threshold)

    def test_empty_graph(self, empty_graph):
        result = QLearningMatcher().match(empty_graph, 0.5)
        assert result.pairs == []
