"""Tests for the Dirty ER clustering extensions."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.dirty_er import (
    build_graph,
    connected_components_clusters,
    extended_maximum_clique_clustering,
    global_edge_consistency_gain,
    maximum_clique_clustering,
)

ALL_CLUSTERERS = [
    connected_components_clusters,
    maximum_clique_clustering,
    extended_maximum_clique_clustering,
    global_edge_consistency_gain,
]


def _two_groups():
    """Two well-separated duplicate groups plus an isolated node."""
    edges = [
        (0, 1, 0.9), (1, 2, 0.85), (0, 2, 0.9),      # triangle group
        (3, 4, 0.8),                                  # pair group
        (2, 3, 0.1),                                  # cross noise
    ]
    return build_graph(6, edges)


@st.composite
def dirty_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    edges = []
    seen = set()
    for _ in range(draw(st.integers(0, 14))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v or (min(u, v), max(u, v)) in seen:
            continue
        seen.add((min(u, v), max(u, v)))
        edges.append((u, v, round(draw(st.floats(0.01, 1.0)), 3)))
    return build_graph(n, edges)


class TestConnectedComponents:
    def test_groups_separated(self):
        clusters = connected_components_clusters(_two_groups(), 0.5)
        assert {0, 1, 2} in clusters
        assert {3, 4} in clusters
        assert {5} in clusters

    def test_threshold_merges(self):
        clusters = connected_components_clusters(_two_groups(), 0.05)
        assert {0, 1, 2, 3, 4} in clusters


class TestMaximumClique:
    def test_extracts_triangle_first(self):
        clusters = maximum_clique_clustering(_two_groups(), 0.5)
        assert {0, 1, 2} in clusters
        assert {3, 4} in clusters

    def test_chain_splits(self):
        # A path a-b-c is not a clique: MCC yields an edge + singleton.
        graph = build_graph(3, [(0, 1, 0.9), (1, 2, 0.9)])
        clusters = maximum_clique_clustering(graph, 0.5)
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [1, 2]


class TestExtendedMaximumClique:
    def test_attaches_adjacent_node(self):
        # Node 3 touches 2 of 3 triangle members: attached at 0.5.
        graph = build_graph(
            4,
            [
                (0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9),
                (3, 0, 0.8), (3, 1, 0.8),
            ],
        )
        clusters = extended_maximum_clique_clustering(graph, 0.5, 0.5)
        assert {0, 1, 2, 3} in clusters

    def test_strict_fraction_blocks_attachment(self):
        graph = build_graph(
            4,
            [
                (0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.9),
                (3, 0, 0.8),
            ],
        )
        clusters = extended_maximum_clique_clustering(graph, 0.5, 1.0)
        assert {0, 1, 2} in clusters

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            extended_maximum_clique_clustering(_two_groups(), 0.5, 0.0)


class TestGlobalEdgeConsistency:
    def test_consistent_triangle_untouched(self):
        clusters = global_edge_consistency_gain(_two_groups(), 0.5)
        assert {0, 1, 2} in clusters

    def test_flip_completes_triangle(self):
        # Two match edges + one just-below-threshold edge in a
        # triangle: flipping the odd edge increases consistency.
        graph = build_graph(
            3, [(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.45)]
        )
        clusters = global_edge_consistency_gain(graph, 0.5)
        assert {0, 1, 2} in clusters


@pytest.mark.parametrize("clusterer", ALL_CLUSTERERS)
@given(graph=dirty_graphs(), threshold=st.sampled_from([0.25, 0.5, 0.75]))
@settings(max_examples=25, deadline=None)
def test_clusters_partition_nodes(clusterer, graph, threshold):
    """Every node appears in exactly one cluster."""
    clusters = clusterer(graph, threshold)
    seen: set[int] = set()
    for cluster in clusters:
        assert cluster, "clusters must be non-empty"
        assert not (cluster & seen), "clusters must be disjoint"
        seen.update(cluster)
    assert seen == set(graph.nodes)


@pytest.mark.parametrize("clusterer", ALL_CLUSTERERS)
def test_empty_graph(clusterer):
    graph = nx.Graph()
    assert clusterer(graph, 0.5) == []
