"""Differential and property tests of the compiled dirty-ER engine.

The compiled kernels (csgraph components, bitset clique growth,
vectorized triangle-consistency gain) must produce **identical
partitions** to the frozen networkx ``*_legacy`` bodies on random
unipartite graphs — the engine-level counterpart of the bipartite
``match_compiled`` differential suite — plus the clustering-specific
invariants: every output is a partition of the node set, and connected
components refine monotonically as the threshold rises.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.dirty_er import (
    DIRTY_ALGORITHM_CODES,
    create_clusterer,
)
from repro.graph.unipartite import UnipartiteGraph

THRESHOLDS = (0.0, 0.25, 0.5, 0.75, 1.0)


@st.composite
def unipartite_graphs(draw, max_nodes: int = 12, max_edges: int = 30):
    """Random unipartite similarity graphs with tie-heavy weights."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    seen: set[tuple[int, int]] = set()
    edges = []
    for _ in range(draw(st.integers(0, max_edges))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        # 2-decimal weights collide with each other and the grid.
        edges.append((*key, round(draw(st.floats(0.01, 1.0)), 2)))
    return UnipartiteGraph.from_edges(n, edges)


def canonical(clusters) -> list[tuple[int, ...]]:
    return sorted(tuple(sorted(cluster)) for cluster in clusters)


@pytest.mark.parametrize("code", DIRTY_ALGORITHM_CODES)
@given(graph=unipartite_graphs(), threshold=st.sampled_from(THRESHOLDS))
@settings(max_examples=40, deadline=None)
def test_compiled_equals_legacy(code, graph, threshold):
    """Partition-for-partition equality against the networkx oracle."""
    clusterer = create_clusterer(code)
    compiled = canonical(clusterer.cluster(graph, threshold))
    legacy = canonical(clusterer.cluster_legacy(graph, threshold))
    assert compiled == legacy


@pytest.mark.parametrize("code", DIRTY_ALGORITHM_CODES)
@given(graph=unipartite_graphs(), threshold=st.sampled_from(THRESHOLDS))
@settings(max_examples=40, deadline=None)
def test_clusters_form_a_partition(code, graph, threshold):
    """Every node appears in exactly one non-empty cluster."""
    clusters = create_clusterer(code).cluster(graph, threshold)
    seen: set[int] = set()
    for cluster in clusters:
        assert cluster, "clusters must be non-empty"
        assert not (cluster & seen), "clusters must be disjoint"
        seen.update(cluster)
    assert seen == set(range(graph.n_nodes))


@given(graph=unipartite_graphs())
@settings(max_examples=40, deadline=None)
def test_connected_components_threshold_monotonicity(graph):
    """Raising the threshold refines the CC partition.

    Edges only leave the selection as ``t`` grows, so every component
    at the higher threshold must be a subset of one component at the
    lower threshold.
    """
    clusterer = create_clusterer("CC")
    partitions = [
        clusterer.cluster(graph, threshold) for threshold in THRESHOLDS
    ]
    for coarse, fine in zip(partitions, partitions[1:]):
        containers = {}
        for index, cluster in enumerate(coarse):
            for node in cluster:
                containers[node] = index
        for cluster in fine:
            owners = {containers[node] for node in cluster}
            assert len(owners) == 1, (
                "higher-threshold component spans several "
                "lower-threshold components"
            )


@given(graph=unipartite_graphs(), threshold=st.sampled_from(THRESHOLDS))
@settings(max_examples=25, deadline=None)
def test_sweep_reuses_one_compiled_graph(graph, threshold):
    """Public entry points and compiled kernels agree through the
    per-graph caches (selections, bitsets, GECG triangles)."""
    compiled = graph.compiled()
    for code in DIRTY_ALGORITHM_CODES:
        clusterer = create_clusterer(code)
        first = canonical(clusterer.cluster_compiled(compiled, threshold))
        again = canonical(clusterer.cluster_compiled(compiled, threshold))
        assert first == again


class TestDeterminismCanon:
    def test_mcc_tie_break_is_lexicographic(self):
        # Two disjoint maximum cliques: {0,1,2} and {3,4,5}.  The
        # canonical rule extracts the lexicographically smaller first,
        # and both always land as clusters.
        edges = [
            (0, 1, 0.9), (0, 2, 0.9), (1, 2, 0.9),
            (3, 4, 0.9), (3, 5, 0.9), (4, 5, 0.9),
        ]
        graph = UnipartiteGraph.from_edges(6, edges)
        clusterer = create_clusterer("MCC")
        assert canonical(clusterer.cluster(graph, 0.5)) == [
            (0, 1, 2), (3, 4, 5),
        ]
        assert canonical(clusterer.cluster_legacy(graph, 0.5)) == [
            (0, 1, 2), (3, 4, 5),
        ]

    def test_gecg_iteration_budget_respected(self):
        graph = UnipartiteGraph.from_edges(
            3, [(0, 1, 0.9), (1, 2, 0.9), (0, 2, 0.45)]
        )
        clusterer = create_clusterer("GECG", max_iterations=0)
        # Budget 0: the initial labelling stands; (0, 2) stays split.
        clusters = canonical(clusterer.cluster(graph, 0.5))
        assert clusters == [(0, 1, 2)]  # CC of the two matched edges
        legacy = canonical(clusterer.cluster_legacy(graph, 0.5))
        assert clusters == legacy

    def test_emcc_attachment_matches_legacy_on_growing_cluster(self):
        # Node 4 only reaches the required fraction after node 3 has
        # been attached — the sequential growing-cluster semantics.
        edges = [
            (0, 1, 0.9), (0, 2, 0.9), (1, 2, 0.9),
            (3, 0, 0.8), (3, 1, 0.8),
            (4, 3, 0.8), (4, 2, 0.8),
        ]
        graph = UnipartiteGraph.from_edges(5, edges)
        clusterer = create_clusterer("EMCC", attachment_fraction=0.5)
        compiled = canonical(clusterer.cluster(graph, 0.5))
        legacy = canonical(clusterer.cluster_legacy(graph, 0.5))
        assert compiled == legacy

    def test_cluster_level_scores_match_scalar_path(self):
        from repro.evaluation.metrics import (
            GroundTruthIndex,
            evaluate_clusters,
        )

        rng = np.random.default_rng(5)
        clusters = []
        node = 0
        for _ in range(6):
            size = int(rng.integers(1, 5))
            clusters.append(set(range(node, node + size)))
            node += size
        truth = {(0, 1), (0, 2), (5, 6), (90, 91)}
        index = GroundTruthIndex(truth)
        assert index.score_clusters(clusters) == evaluate_clusters(
            clusters, truth
        )
