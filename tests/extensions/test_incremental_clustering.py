"""Incremental clustering must equal the batch path, partition-for-partition.

Streams random edge deltas through the graph mutators plus an
:class:`~repro.extensions.incremental.IncrementalClusterer` per
algorithm, querying the maintained partition after every batch (so
the per-component caches are exercised, not bypassed), and compares
the final partitions against a from-scratch batch clustering of the
same edge set.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.dirty_er import (
    DIRTY_ALGORITHM_CODES,
    DirtyClusterer,
)
from repro.extensions.incremental import IncrementalClusterer
from repro.graph.incremental import (
    add_uni_nodes,
    delete_uni_edges,
    insert_uni_edges,
)
from repro.graph.unipartite import UnipartiteGraph

N_NODES = 8
THRESHOLD = 0.5
WEIGHTS = (0.1, 0.25, 0.5, 0.75, 0.9)


def canonical(clusters) -> list[tuple[int, ...]]:
    return sorted(tuple(sorted(cluster)) for cluster in clusters)


@st.composite
def edge_stream(draw):
    pairs = [
        (u, v) for u in range(N_NODES) for v in range(u + 1, N_NODES)
    ]
    chosen = draw(
        st.lists(
            st.tuples(st.sampled_from(pairs), st.sampled_from(WEIGHTS)),
            max_size=len(pairs),
            unique_by=lambda entry: entry[0],
        )
    )
    batch_size = draw(st.integers(1, 5))
    return chosen, batch_size


def batch_partitions(edges) -> dict[str, list[tuple[int, ...]]]:
    graph = UnipartiteGraph(
        N_NODES,
        [u for (u, _), _ in edges],
        [v for (_, v), _ in edges],
        [w for _, w in edges],
    )
    compiled = graph.compiled()
    return {
        code: canonical(
            DirtyClusterer(code).cluster_compiled(compiled, THRESHOLD)
        )
        for code in DIRTY_ALGORITHM_CODES
    }


@settings(max_examples=40, deadline=None)
@given(stream=edge_stream())
def test_streamed_inserts_match_batch(stream):
    edges, batch_size = stream
    compiled = UnipartiteGraph(N_NODES, [], [], []).compiled()
    maintained = {
        code: IncrementalClusterer(code, compiled, THRESHOLD)
        for code in DIRTY_ALGORITHM_CODES
    }
    for at in range(0, len(edges), batch_size):
        batch = edges[at : at + batch_size]
        u = np.asarray([pair[0] for pair, _ in batch])
        v = np.asarray([pair[1] for pair, _ in batch])
        w = np.asarray([weight for _, weight in batch])
        insert_uni_edges(compiled, u, v, w)
        for clusterer in maintained.values():
            clusterer.insert(u, v, w)
            clusterer.partition()  # exercise the caches mid-stream
    expected = batch_partitions(edges)
    for code, clusterer in maintained.items():
        assert canonical(clusterer.partition()) == expected[code], code


@settings(max_examples=40, deadline=None)
@given(stream=edge_stream(), data=st.data())
def test_deletes_match_batch(stream, data):
    edges, _ = stream
    compiled = UnipartiteGraph(N_NODES, [], [], []).compiled()
    maintained = {
        code: IncrementalClusterer(code, compiled, THRESHOLD)
        for code in DIRTY_ALGORITHM_CODES
    }
    u = np.asarray([pair[0] for pair, _ in edges], dtype=np.int64)
    v = np.asarray([pair[1] for pair, _ in edges], dtype=np.int64)
    w = np.asarray([weight for _, weight in edges])
    insert_uni_edges(compiled, u, v, w)
    for clusterer in maintained.values():
        clusterer.insert(u, v, w)
        clusterer.partition()
    drop = data.draw(
        st.lists(
            st.integers(0, max(len(edges) - 1, 0)),
            max_size=len(edges),
            unique=True,
        )
        if edges
        else st.just([])
    )
    if drop:
        delete_uni_edges(compiled, u[drop], v[drop], w[drop])
        for clusterer in maintained.values():
            clusterer.delete(u[drop], v[drop], w[drop])
    survivors = [
        entry for at, entry in enumerate(edges) if at not in set(drop)
    ]
    expected = batch_partitions(survivors)
    for code, clusterer in maintained.items():
        assert canonical(clusterer.partition()) == expected[code], code


def test_node_growth_is_observed():
    compiled = UnipartiteGraph(2, [0], [1], [0.9]).compiled()
    clusterer = IncrementalClusterer("CC", compiled, THRESHOLD)
    add_uni_nodes(compiled, 2)
    clusterer.add_nodes(2)
    insert_uni_edges(compiled, [2], [3], [0.8])
    clusterer.insert([2], [3], [0.8])
    assert canonical(clusterer.partition()) == [(0, 1), (2, 3)]
