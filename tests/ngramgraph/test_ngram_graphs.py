"""Tests for n-gram graph models and graph similarity measures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ngramgraph import (
    build_entity_graphs,
    build_value_graph,
    containment_matrix,
    graphs_to_sparse,
    merge_graphs,
    normalized_value_matrix,
    overall_matrix,
    value_matrix,
)

value_lists = st.lists(
    st.lists(st.text(alphabet="abcd ", max_size=10), max_size=3),
    min_size=1,
    max_size=4,
)


class TestBuildValueGraph:
    def test_paper_example_shape(self):
        # "Joe Biden" 3-grams: 'joe' connects to 'oe_' and 'e_b', etc.
        graph = build_value_graph("Joe Biden", 3, "char")
        assert ("joe", "oe_") in graph
        assert ("e_b", "joe") in graph  # sorted tuple order
        assert graph[("joe", "oe_")] == 1.0

    def test_window_size(self):
        # grams of "abcd" with n=2: ab, bc, cd; window 2 connects
        # ab-bc, ab-cd, bc-cd.
        graph = build_value_graph("abcd", 2, "char")
        assert set(graph) == {("ab", "bc"), ("ab", "cd"), ("bc", "cd")}

    def test_cooccurrence_accumulates(self):
        # "ababab" 2-grams: ab,ba,ab,ba,ab; 'ab'-'ba' co-occur often.
        graph = build_value_graph("ababab", 2, "char")
        assert graph[("ab", "ba")] > 1.0

    def test_empty_text(self):
        assert build_value_graph("", 3, "char") == {}

    def test_token_unit(self):
        graph = build_value_graph("new york city hall", 1, "token")
        assert ("new", "york") in graph

    def test_invalid_unit(self):
        with pytest.raises(ValueError):
            build_value_graph("x", 2, "paragraph")


class TestMergeGraphs:
    def test_running_average(self):
        g1 = {("a", "b"): 2.0}
        g2 = {("a", "b"): 1.0, ("b", "c"): 1.0}
        merged = merge_graphs([g1, g2])
        assert merged[("a", "b")] == pytest.approx(1.5)
        assert merged[("b", "c")] == pytest.approx(0.5)

    def test_empty_list(self):
        assert merge_graphs([]) == {}

    def test_single_graph_copied(self):
        g = {("a", "b"): 1.0}
        merged = merge_graphs([g])
        merged[("a", "b")] = 99.0
        assert g[("a", "b")] == 1.0

    def test_entity_graphs(self):
        graphs = build_entity_graphs(
            [["abc", "abd"], ["xyz"]], n=2, unit="char"
        )
        assert len(graphs) == 2
        assert graphs[1]  # non-empty


class TestSparseConversion:
    def test_shared_edge_vocabulary(self):
        left = [{("a", "b"): 1.0}]
        right = [{("a", "b"): 2.0, ("b", "c"): 1.0}]
        sp_left, sp_right = graphs_to_sparse(left, right)
        assert sp_left.shape[1] == sp_right.shape[1] == 2
        assert sp_left.nnz == 1
        assert sp_right.nnz == 2


class TestGraphMeasures:
    def _sparse_pair(self, texts_left, texts_right, n=2):
        graphs_left = [build_value_graph(t, n, "char") for t in texts_left]
        graphs_right = [build_value_graph(t, n, "char") for t in texts_right]
        return graphs_to_sparse(graphs_left, graphs_right)

    def test_identical_text_scores_one(self):
        left, right = self._sparse_pair(["abcdef"], ["abcdef"])
        assert containment_matrix(left, right)[0, 0] == pytest.approx(1.0)
        assert normalized_value_matrix(left, right)[0, 0] == pytest.approx(1.0)
        assert overall_matrix(left, right)[0, 0] == pytest.approx(1.0)

    def test_disjoint_scores_zero(self):
        left, right = self._sparse_pair(["aaaa"], ["zzzz"])
        assert containment_matrix(left, right)[0, 0] == 0.0
        assert value_matrix(left, right)[0, 0] == 0.0

    def test_containment_ignores_weights(self):
        # Same edge set, different weights: containment stays 1.
        left = [{("a", "b"): 5.0}]
        right = [{("a", "b"): 1.0}]
        sp_left, sp_right = graphs_to_sparse(left, right)
        assert containment_matrix(sp_left, sp_right)[0, 0] == pytest.approx(1.0)
        assert value_matrix(sp_left, sp_right)[0, 0] == pytest.approx(0.2)

    def test_value_leq_normalized_value(self):
        left, right = self._sparse_pair(
            ["abcabc", "abcd"], ["abc", "dcba"]
        )
        vs = value_matrix(left, right)
        ns = normalized_value_matrix(left, right)
        assert (vs <= ns + 1e-12).all()

    def test_overall_is_mean(self):
        left, right = self._sparse_pair(["abcab"], ["abcd"])
        cos = containment_matrix(left, right)
        vs = value_matrix(left, right)
        ns = normalized_value_matrix(left, right)
        assert np.allclose(overall_matrix(left, right), (cos + vs + ns) / 3)

    @given(value_lists, value_lists)
    @settings(max_examples=20, deadline=None)
    def test_measure_ranges(self, lists_left, lists_right):
        graphs_left = build_entity_graphs(lists_left, 2, "char")
        graphs_right = build_entity_graphs(lists_right, 2, "char")
        sp_left, sp_right = graphs_to_sparse(graphs_left, graphs_right)
        for measure in (
            containment_matrix,
            value_matrix,
            normalized_value_matrix,
            overall_matrix,
        ):
            sims = measure(sp_left, sp_right)
            assert sims.min() >= 0.0
            assert sims.max() <= 1.0 + 1e-9
