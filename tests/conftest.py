"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graph import SimilarityGraph, figure1_graph


@pytest.fixture
def fig1():
    """The paper's Figure 1(a) similarity graph."""
    return figure1_graph()


@pytest.fixture
def empty_graph():
    return SimilarityGraph.from_edges(4, 3, [])


@pytest.fixture
def perfect_graph():
    """A 3x3 graph with an unambiguous perfect matching."""
    return SimilarityGraph.from_edges(
        3,
        3,
        [
            (0, 0, 0.9),
            (1, 1, 0.8),
            (2, 2, 0.7),
            (0, 1, 0.2),
            (1, 2, 0.1),
        ],
    )


@st.composite
def similarity_graphs(
    draw,
    max_left: int = 8,
    max_right: int = 8,
    max_edges: int = 24,
):
    """Random bipartite similarity graphs for property-based tests.

    Weights avoid exact 0.0 (the paper only keeps pairs with similarity
    above zero) and are rounded to 3 decimals so that thresholds drawn
    from a coarser grid never collide with edge weights.
    """
    n_left = draw(st.integers(min_value=0, max_value=max_left))
    n_right = draw(st.integers(min_value=0, max_value=max_right))
    if n_left == 0 or n_right == 0:
        return SimilarityGraph.from_edges(n_left, n_right, [])
    n_edges = draw(st.integers(min_value=0, max_value=max_edges))
    seen: set[tuple[int, int]] = set()
    edges = []
    for _ in range(n_edges):
        i = draw(st.integers(min_value=0, max_value=n_left - 1))
        j = draw(st.integers(min_value=0, max_value=n_right - 1))
        if (i, j) in seen:
            continue
        seen.add((i, j))
        w = draw(
            st.floats(
                min_value=0.001,
                max_value=1.0,
                allow_nan=False,
                allow_infinity=False,
            )
        )
        edges.append((i, j, round(w, 3)))
    return SimilarityGraph.from_edges(n_left, n_right, edges)


def thresholds_strategy():
    """Thresholds on the paper's sweep grid, offset to dodge weights."""
    return st.sampled_from([round(0.05 * k + 0.0005, 4) for k in range(20)])


def assert_valid_result(result, graph, threshold, inclusive: bool = False):
    """Common invariants every matcher result must satisfy."""
    result.validate(graph)
    weights = {}
    for i, j, w in zip(graph.left, graph.right, graph.weight):
        weights[(int(i), int(j))] = max(weights.get((int(i), int(j)), 0.0), w)
    for pair in result.pairs:
        assert pair in weights, f"pair {pair} is not a graph edge"
        if inclusive:
            assert weights[pair] >= threshold
        else:
            assert weights[pair] > threshold


def graph_signature(graph):
    """Snapshot of a graph's content, for mutation checks."""
    return (
        graph.n_left,
        graph.n_right,
        graph.left.copy(),
        graph.right.copy(),
        graph.weight.copy(),
    )


def assert_unchanged(graph, signature):
    n_left, n_right, left, right, weight = signature
    assert graph.n_left == n_left
    assert graph.n_right == n_right
    assert np.array_equal(graph.left, left)
    assert np.array_equal(graph.right, right)
    assert np.array_equal(graph.weight, weight)
