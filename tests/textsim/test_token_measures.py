"""Tests for token-level string similarity measures and tokenizers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textsim import (
    block_distance_similarity,
    cosine_token_similarity,
    dice_similarity,
    euclidean_token_similarity,
    generalized_jaccard_similarity,
    get_measure,
    jaccard_similarity,
    monge_elkan_similarity,
    overlap_coefficient,
    simon_white_similarity,
    smith_waterman_similarity,
)
from repro.textsim.registry import (
    CHARACTER_MEASURES,
    SCHEMA_BASED_MEASURES,
    TOKEN_MEASURES,
)
from repro.textsim.tokenize import character_ngrams, token_ngrams, tokens

SYMMETRIC_MEASURES = [
    cosine_token_similarity,
    euclidean_token_similarity,
    block_distance_similarity,
    dice_similarity,
    simon_white_similarity,
    overlap_coefficient,
    jaccard_similarity,
    generalized_jaccard_similarity,
]

word_texts = st.lists(
    st.text(alphabet="abcdefg", min_size=1, max_size=6), max_size=6
).map(" ".join)


class TestTokenizers:
    def test_tokens_lowercase_alnum(self):
        assert tokens("Joe  Biden, Jr.") == ["joe", "biden", "jr"]

    def test_tokens_empty(self):
        assert tokens("  ,;  ") == []

    def test_character_ngrams_paper_example(self):
        # The paper's running example: 3-grams of "Joe Biden".
        grams = character_ngrams("Joe Biden", 3)
        assert grams == ["joe", "oe_", "e_b", "_bi", "bid", "ide", "den"]

    def test_character_ngrams_short_text(self):
        assert character_ngrams("ab", 3) == ["ab"]

    def test_character_ngrams_empty(self):
        assert character_ngrams("", 3) == []

    def test_character_ngrams_invalid_n(self):
        with pytest.raises(ValueError):
            character_ngrams("abc", 0)

    def test_token_ngrams_bigram(self):
        assert token_ngrams("new york city", 2) == [
            "new york",
            "york city",
        ]

    def test_token_ngrams_short(self):
        assert token_ngrams("hello", 2) == ["hello"]

    def test_token_ngrams_invalid_n(self):
        with pytest.raises(ValueError):
            token_ngrams("abc", -1)


class TestSetMeasures:
    def test_jaccard(self):
        assert jaccard_similarity("a b c", "b c d") == pytest.approx(0.5)

    def test_dice(self):
        assert dice_similarity("a b c", "b c d") == pytest.approx(4 / 6)

    def test_overlap(self):
        assert overlap_coefficient("a b", "a b c d") == 1.0

    def test_cosine(self):
        assert cosine_token_similarity("a b", "a b") == pytest.approx(1.0)
        assert cosine_token_similarity("a", "b") == 0.0

    def test_generalized_jaccard_multiset(self):
        # "a a b" vs "a b b": min-sum 2 (a:1, b:1), max-sum 4 (a:2, b:2).
        assert generalized_jaccard_similarity(
            "a a b", "a b b"
        ) == pytest.approx(0.5)

    def test_simon_white_multiset(self):
        # overlap 2 (a:1, b:1), total 6 -> 2*2/6.
        assert simon_white_similarity("a a b", "a b b") == pytest.approx(4 / 6)

    def test_block_distance(self):
        # Frequency diff: a:1, b:1 -> L1=2, total 6.
        assert block_distance_similarity("a a b", "a b b") == pytest.approx(
            1 - 2 / 6
        )

    def test_euclidean_disjoint_is_zero(self):
        assert euclidean_token_similarity("a", "b") == pytest.approx(0.0)


class TestMongeElkan:
    def test_identical(self):
        assert monge_elkan_similarity("peter smith", "peter smith") == 1.0

    def test_typo_tolerant(self):
        value = monge_elkan_similarity("peter smith", "peter smyth")
        assert value > 0.7

    def test_asymmetric(self):
        a = "peter"
        b = "peter smith jones"
        # Every token of `a` is found in `b`, not vice versa.
        assert monge_elkan_similarity(a, b) >= monge_elkan_similarity(b, a)

    def test_empty(self):
        assert monge_elkan_similarity("", "") == 1.0
        assert monge_elkan_similarity("a", "") == 0.0


class TestSmithWaterman:
    def test_identical(self):
        assert smith_waterman_similarity("abc", "abc") == 1.0

    def test_substring_scores_high(self):
        assert smith_waterman_similarity("bcd", "abcde") == 1.0

    def test_disjoint(self):
        assert smith_waterman_similarity("aaa", "zzz") == 0.0

    @given(
        st.text(alphabet="abcz", max_size=10),
        st.text(alphabet="abcz", max_size=10),
    )
    @settings(max_examples=50)
    def test_range(self, a, b):
        assert 0.0 <= smith_waterman_similarity(a, b) <= 1.0


@pytest.mark.parametrize("measure", SYMMETRIC_MEASURES)
class TestCommonTokenProperties:
    @given(a=word_texts, b=word_texts)
    @settings(max_examples=40, deadline=None)
    def test_range(self, measure, a, b):
        assert 0.0 <= measure(a, b) <= 1.0 + 1e-12

    @given(a=word_texts)
    @settings(max_examples=40, deadline=None)
    def test_identity(self, measure, a):
        assert measure(a, a) == pytest.approx(1.0)

    @given(a=word_texts, b=word_texts)
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, measure, a, b):
        assert measure(a, b) == pytest.approx(measure(b, a), abs=1e-12)


class TestRegistry:
    def test_sixteen_schema_based_measures(self):
        """The paper lists exactly 16 schema-based measures."""
        assert len(SCHEMA_BASED_MEASURES) == 16
        assert len(CHARACTER_MEASURES) == 7
        assert len(TOKEN_MEASURES) == 9

    def test_get_measure(self):
        assert get_measure("jaro") is CHARACTER_MEASURES["jaro"]

    def test_get_measure_unknown(self):
        with pytest.raises(KeyError):
            get_measure("nope")
