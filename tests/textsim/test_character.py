"""Tests for character-level string similarity measures."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textsim import (
    damerau_levenshtein_similarity,
    jaro_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    longest_common_subsequence_similarity,
    longest_common_substring_similarity,
    needleman_wunsch_similarity,
    qgrams_distance_similarity,
)
from repro.textsim.character import damerau_levenshtein_distance

ALL_MEASURES = [
    levenshtein_similarity,
    damerau_levenshtein_similarity,
    jaro_similarity,
    needleman_wunsch_similarity,
    qgrams_distance_similarity,
    longest_common_substring_similarity,
    longest_common_subsequence_similarity,
]

texts = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=20
)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("kitten", "sitting", 3),
            ("", "", 0),
            ("abc", "", 3),
            ("", "abc", 3),
            ("same", "same", 0),
            ("flaw", "lawn", 2),
            ("ab", "ba", 2),
        ],
    )
    def test_distance(self, a, b, expected):
        assert levenshtein_distance(a, b) == expected

    def test_similarity_normalized(self):
        assert levenshtein_similarity("kitten", "sitting") == pytest.approx(
            1 - 3 / 7
        )

    def test_empty_strings_identical(self):
        assert levenshtein_similarity("", "") == 1.0

    @given(texts, texts)
    @settings(max_examples=60)
    def test_triangle_inequality_via_third(self, a, b):
        # d(a,b) <= d(a,"") + d("",b) = len(a)+len(b)
        assert levenshtein_distance(a, b) <= len(a) + len(b)


class TestDamerauLevenshtein:
    def test_transposition_costs_one(self):
        assert damerau_levenshtein_distance("ab", "ba") == 1
        assert levenshtein_distance("ab", "ba") == 2

    def test_ca_abc(self):
        # Classic OSA example: "ca" -> "abc" costs 3 under OSA.
        assert damerau_levenshtein_distance("ca", "abc") == 3

    @given(texts, texts)
    @settings(max_examples=60)
    def test_never_exceeds_levenshtein(self, a, b):
        assert damerau_levenshtein_distance(a, b) <= levenshtein_distance(a, b)


class TestJaro:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("martha", "marhta", 0.944444),
            ("dixon", "dicksonx", 0.766667),
            ("jellyfish", "smellyfish", 0.896296),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert jaro_similarity(a, b) == pytest.approx(expected, abs=1e-5)

    def test_no_common_characters(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_identical(self):
        assert jaro_similarity("hello", "hello") == 1.0


class TestNeedlemanWunsch:
    def test_identical(self):
        assert needleman_wunsch_similarity("abc", "abc") == 1.0

    def test_one_empty(self):
        assert needleman_wunsch_similarity("abc", "") == 0.0

    def test_single_substitution(self):
        # Cost 1 (mismatch), bound 2*3: similarity 1 - 1/6.
        assert needleman_wunsch_similarity("abc", "abd") == pytest.approx(
            1 - 1 / 6
        )

    def test_prefers_alignment_over_gaps(self):
        assert needleman_wunsch_similarity(
            "abcd", "abed"
        ) > needleman_wunsch_similarity("abcd", "wxyz")


class TestQGrams:
    def test_identical(self):
        assert qgrams_distance_similarity("hello", "hello") == 1.0

    def test_disjoint(self):
        assert qgrams_distance_similarity("aaaa", "zzzz") == 0.0

    def test_partial_overlap(self):
        value = qgrams_distance_similarity("nicholas", "nicolas")
        assert 0.5 < value < 1.0


class TestLongestCommon:
    def test_substring(self):
        # "ababc" vs "xabcx": longest common substring "abc" (3/5).
        assert longest_common_substring_similarity(
            "ababc", "xabcx"
        ) == pytest.approx(0.6)

    def test_subsequence_geq_substring(self):
        a, b = "abcdef", "axbycz"
        assert longest_common_subsequence_similarity(
            a, b
        ) >= longest_common_substring_similarity(a, b)

    def test_subsequence_value(self):
        # LCS of "abcdef"/"axbycz" is "abc" (3/6).
        assert longest_common_subsequence_similarity(
            "abcdef", "axbycz"
        ) == pytest.approx(0.5)

    @given(texts, texts)
    @settings(max_examples=60)
    def test_subsequence_dominates_substring(self, a, b):
        assert (
            longest_common_subsequence_similarity(a, b)
            >= longest_common_substring_similarity(a, b) - 1e-12
        )


@pytest.mark.parametrize("measure", ALL_MEASURES)
class TestCommonProperties:
    @given(a=texts, b=texts)
    @settings(max_examples=40, deadline=None)
    def test_range(self, measure, a, b):
        value = measure(a, b)
        assert 0.0 <= value <= 1.0

    @given(a=texts)
    @settings(max_examples=40, deadline=None)
    def test_identity(self, measure, a):
        assert measure(a, a) == 1.0

    @given(a=texts, b=texts)
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, measure, a, b):
        assert measure(a, b) == pytest.approx(measure(b, a), abs=1e-12)

    def test_both_empty(self, measure):
        assert measure("", "") == 1.0
