"""Tests for the semantic embedding substitutes and their measures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings import (
    ContextualModel,
    FastTextLikeModel,
    cosine_similarity_matrix,
    euclidean_similarity_matrix,
    hash_vector,
    relaxed_word_mover_distance,
    word_mover_similarity_matrix,
)

words = st.text(alphabet="abcdefgh", min_size=1, max_size=8)
sentences = st.lists(words, min_size=0, max_size=5).map(" ".join)


class TestHashVector:
    def test_deterministic(self):
        assert np.array_equal(hash_vector("abc", 16), hash_vector("abc", 16))

    def test_distinct_strings_differ(self):
        assert not np.array_equal(
            hash_vector("abc", 16), hash_vector("abd", 16)
        )

    def test_unit_norm(self):
        assert np.linalg.norm(hash_vector("hello", 32)) == pytest.approx(1.0)

    def test_dimension(self):
        assert hash_vector("x", 7).shape == (7,)

    @given(words, words)
    @settings(max_examples=30)
    def test_near_orthogonal_in_high_dim(self, a, b):
        if a == b:
            return
        cos = float(hash_vector(a, 256) @ hash_vector(b, 256))
        assert abs(cos) < 0.5  # loose, but catches collisions


class TestFastTextLike:
    def test_oov_tokens_embeddable(self):
        model = FastTextLikeModel(dim=32)
        vector = model.embed_token("zx81qq")  # arbitrary alphanumerics
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_shared_subwords_raise_similarity(self):
        model = FastTextLikeModel(dim=64)
        near = float(
            model.embed_token("walkman") @ model.embed_token("walkmans")
        )
        far = float(
            model.embed_token("walkman") @ model.embed_token("zzyzx")
        )
        assert near > far

    def test_text_embedding_is_token_mean(self):
        model = FastTextLikeModel(dim=16)
        text_vec = model.embed_text("alpha beta")
        tokens = model.embed_tokens("alpha beta")
        assert np.allclose(text_vec, tokens.mean(axis=0))

    def test_empty_text_is_zero(self):
        model = FastTextLikeModel(dim=16)
        assert np.allclose(model.embed_text(""), 0.0)
        assert model.embed_tokens("").shape == (0, 16)

    def test_embed_texts_stacks(self):
        model = FastTextLikeModel(dim=16)
        matrix = model.embed_texts(["a b", "c"])
        assert matrix.shape == (2, 16)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            FastTextLikeModel(dim=0)
        with pytest.raises(ValueError):
            FastTextLikeModel(min_n=4, max_n=3)


class TestContextual:
    def test_context_changes_token_vector(self):
        """The defining transformer property: homonyms differ by context."""
        model = ContextualModel(dim=48)
        river = model.embed_tokens("river bank water")
        money = model.embed_tokens("money bank account")
        # 'bank' is token index 1 in both sentences.
        cos = float(river[1] @ money[1])
        assert cos < 0.999

    def test_same_context_same_vector(self):
        model = ContextualModel(dim=48)
        a = model.embed_tokens("green apple pie")
        b = model.embed_tokens("green apple pie")
        assert np.allclose(a, b)

    def test_zero_mix_without_position_is_static(self):
        model = ContextualModel(dim=32, mix=0.0, positional_scale=0.0)
        vectors = model.embed_tokens("alpha beta alpha")
        assert np.allclose(vectors[0], vectors[2])

    def test_empty_text(self):
        model = ContextualModel(dim=16)
        assert model.embed_tokens("").shape == (0, 16)
        assert np.allclose(model.embed_text(""), 0.0)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            ContextualModel(dim=-1)
        with pytest.raises(ValueError):
            ContextualModel(window=-1)
        with pytest.raises(ValueError):
            ContextualModel(mix=1.5)


class TestRWMD:
    def test_identical_texts_zero(self):
        model = FastTextLikeModel(dim=32)
        tokens = model.embed_tokens("red fox jumps")
        assert relaxed_word_mover_distance(tokens, tokens) == pytest.approx(
            0.0, abs=1e-6
        )

    def test_symmetric(self):
        model = FastTextLikeModel(dim=32)
        a = model.embed_tokens("red fox")
        b = model.embed_tokens("blue whale swims")
        assert relaxed_word_mover_distance(a, b) == pytest.approx(
            relaxed_word_mover_distance(b, a)
        )

    def test_empty_cases(self):
        empty = np.zeros((0, 8))
        some = np.ones((2, 8))
        assert relaxed_word_mover_distance(empty, empty) == 0.0
        assert relaxed_word_mover_distance(empty, some) == float("inf")

    def test_non_negative(self):
        model = FastTextLikeModel(dim=32)
        a = model.embed_tokens("alpha beta")
        b = model.embed_tokens("gamma delta")
        assert relaxed_word_mover_distance(a, b) >= 0.0

    def test_word_order_invariant(self):
        """RWMD, like WMD, ignores word order."""
        model = FastTextLikeModel(dim=32)
        a = model.embed_tokens("red fox jumps")
        b = model.embed_tokens("jumps fox red")
        assert relaxed_word_mover_distance(a, b) == pytest.approx(0.0, abs=1e-6)


class TestMeasureMatrices:
    def test_cosine_range_and_identity(self):
        model = FastTextLikeModel(dim=32)
        matrix = model.embed_texts(["red fox", "blue whale"])
        sims = cosine_similarity_matrix(matrix, matrix)
        assert sims[0, 0] == pytest.approx(1.0)
        assert sims.min() >= 0.0
        assert sims.max() <= 1.0

    def test_euclidean_identity(self):
        model = FastTextLikeModel(dim=32)
        matrix = model.embed_texts(["red fox"])
        sims = euclidean_similarity_matrix(matrix, matrix)
        assert sims[0, 0] == pytest.approx(1.0)

    def test_wmd_matrix(self):
        model = FastTextLikeModel(dim=32)
        left = [model.embed_tokens(t) for t in ["red fox", ""]]
        right = [model.embed_tokens(t) for t in ["red fox", "blue whale"]]
        sims = word_mover_similarity_matrix(left, right)
        assert sims.shape == (2, 2)
        assert sims[0, 0] == pytest.approx(1.0)
        assert sims[1, 0] == 0.0  # empty vs non-empty
        assert 0.0 < sims[0, 1] < 1.0

    @given(st.lists(sentences, min_size=1, max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_semantic_sims_mostly_high(self, texts):
        """The paper's observation: dense models give most pairs
        fairly high similarity — here everything stays within range."""
        model = ContextualModel(dim=32)
        matrix = model.embed_texts(texts)
        sims = cosine_similarity_matrix(matrix, matrix)
        assert sims.min() >= 0.0
        assert sims.max() <= 1.0 + 1e-9
