"""Fault-tolerance suite: ResilientPool, RunJournal, fault injection.

Every recovery path of :mod:`repro.pipeline.resilience` is driven from
the real process topology through the deterministic injectors of
:mod:`repro.testing.faults` (armed via the ``REPRO_FAULTS`` env var,
which is the only channel that reaches pool worker processes):

* worker crash (``kill``: the worker ``os._exit``\\ s as if OOM-killed)
  → broken-pool respawn, unfinished-only resubmission;
* worker hang (``delay`` past the per-task deadline) → pool abandoned,
  task retried on a fresh pool;
* task error (``error``) → bounded retry with backoff, then a
  :class:`ResilienceError` naming the failed keys;
* repeated pool death → graceful degradation to inline serial
  execution (with a warning);
* interruption → the run journal resumes, skipping completed work,
  with results bit-identical to an uninterrupted run.

The corpus-level tests assert the acceptance bar of the resilience
PR: a run that crashes, hangs or hits store corruption ends with
exactly the same graphs as the failure-free path.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.pipeline.resilience import (
    JOURNAL_VERSION,
    JournalCodec,
    ResilienceError,
    ResilientPool,
    RetryPolicy,
    RunJournal,
    Task,
)
from repro.testing import faults

# ----------------------------------------------------------------------
# Module-level task payloads (process pools pickle them by reference)
# ----------------------------------------------------------------------


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"boom({x})")


def _write_json(value, path):
    (path / "value.json").write_text(json.dumps(value))


def _read_json(path):
    return json.loads((path / "value.json").read_text())


JSON_CODEC = JournalCodec(write=_write_json, read=_read_json)

#: Fast-failing policy for the unit tests.
FAST = RetryPolicy(
    max_retries=2, backoff_seconds=0.01, poll_seconds=0.02
)


def _tasks(n=4):
    return [Task(key=f"t{i}", fn=_square, args=(i,)) for i in range(n)]


def _expected(n=4):
    return {f"t{i}": i * i for i in range(n)}


# ----------------------------------------------------------------------
# RunJournal
# ----------------------------------------------------------------------
class TestRunJournal:
    def test_commit_and_lookup_roundtrip(self, tmp_path):
        journal = RunJournal(tmp_path, "run-a")
        assert journal.lookup("task-1") is None
        assert journal.commit("task-1", lambda p: _write_json(41, p))
        entry = journal.lookup("task-1")
        assert entry is not None
        assert _read_json(entry) == 41

    def test_commit_is_write_once(self, tmp_path):
        journal = RunJournal(tmp_path, "run-a")
        assert journal.commit("task-1", lambda p: _write_json(1, p))
        assert not journal.commit("task-1", lambda p: _write_json(2, p))
        assert _read_json(journal.lookup("task-1")) == 1

    def test_distinct_runs_do_not_share_entries(self, tmp_path):
        first = RunJournal(tmp_path, "run-a")
        second = RunJournal(tmp_path, "run-b")
        first.commit("task-1", lambda p: _write_json(1, p))
        assert second.lookup("task-1") is None

    def test_clear_drops_the_run(self, tmp_path):
        journal = RunJournal(tmp_path, "run-a")
        journal.commit("task-1", lambda p: _write_json(1, p))
        journal.clear()
        assert journal.lookup("task-1") is None
        assert journal.completed_keys() == set()

    def test_completed_keys(self, tmp_path):
        journal = RunJournal(tmp_path, "run-a")
        for key in ("x", "y"):
            journal.commit(key, lambda p: _write_json(0, p))
        assert journal.completed_keys() == {"x", "y"}

    def test_corrupt_marker_is_a_miss_and_removed(self, tmp_path):
        journal = RunJournal(tmp_path, "run-a")
        journal.commit("task-1", lambda p: _write_json(1, p))
        entry = journal.lookup("task-1")
        faults.corrupt_json(entry / "_entry.json")
        assert journal.lookup("task-1") is None
        assert not entry.exists()

    def test_foreign_version_is_a_miss(self, tmp_path):
        journal = RunJournal(tmp_path, "run-a")
        journal.commit("task-1", lambda p: _write_json(1, p))
        entry = journal.lookup("task-1")
        marker = entry / "_entry.json"
        meta = json.loads(marker.read_text())
        meta["version"] = JOURNAL_VERSION + 1
        marker.write_text(json.dumps(meta))
        assert journal.lookup("task-1") is None

    def test_run_dir_is_deterministic(self, tmp_path):
        assert (
            RunJournal(tmp_path, "run-a").dir
            == RunJournal(tmp_path, "run-a").dir
        )
        assert (
            RunJournal(tmp_path, "run-a").dir
            != RunJournal(tmp_path, "run-b").dir
        )


# ----------------------------------------------------------------------
# ResilientPool basics
# ----------------------------------------------------------------------
class TestPoolBasics:
    def test_inline_run(self):
        pool = ResilientPool(0, policy=FAST)
        assert pool.run(_tasks()) == _expected()

    def test_pooled_equals_inline(self):
        inline = ResilientPool(0, policy=FAST).run(_tasks(6))
        pooled = ResilientPool(2, policy=FAST).run(_tasks(6))
        assert pooled == inline == _expected(6)
        assert list(pooled) == [f"t{i}" for i in range(6)]  # caller order

    def test_thread_pool(self):
        pool = ResilientPool(3, kind="thread", policy=FAST)
        assert pool.run(_tasks(6)) == _expected(6)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ResilientPool(1, kind="fiber")

    def test_journal_requires_codec(self, tmp_path):
        with pytest.raises(ValueError, match="codec"):
            ResilientPool(1, journal=RunJournal(tmp_path, "r"))

    def test_duplicate_keys_rejected(self):
        pool = ResilientPool(0, policy=FAST)
        tasks = [Task("same", _square, (1,)), Task("same", _square, (2,))]
        with pytest.raises(ValueError, match="duplicate"):
            pool.run(tasks)

    def test_on_result_fires_per_task(self):
        seen = []
        ResilientPool(0, policy=FAST).run(
            _tasks(3), on_result=lambda key, value: seen.append((key, value))
        )
        assert sorted(seen) == [("t0", 0), ("t1", 1), ("t2", 4)]


# ----------------------------------------------------------------------
# Retry / permanent failure
# ----------------------------------------------------------------------
class TestRetries:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_transient_error_retries_to_success(self, monkeypatch, workers):
        # First attempt of t1 raises; the retry (attempt 1) succeeds.
        faults.inject(
            monkeypatch, {"match": "t1", "action": "error", "attempts": [0]}
        )
        pool = ResilientPool(workers, policy=FAST)
        assert pool.run(_tasks()) == _expected()

    @pytest.mark.parametrize("workers", [0, 2])
    def test_permanent_error_names_the_key(self, monkeypatch, workers):
        faults.inject(
            monkeypatch, {"match": "t2", "action": "error", "attempts": None}
        )
        pool = ResilientPool(workers, policy=FAST)
        with pytest.raises(ResilienceError) as excinfo:
            pool.run(_tasks())
        error = excinfo.value
        assert [f.key for f in error.failures] == ["t2"]
        assert error.failures[0].attempts == FAST.max_retries + 1
        assert "t2" in str(error)

    def test_plain_exception_reports_error_kind(self):
        pool = ResilientPool(0, policy=FAST)
        tasks = [Task("ok", _square, (3,)), Task("bad", _boom, (3,))]
        with pytest.raises(ResilienceError) as excinfo:
            pool.run(tasks)
        (failure,) = excinfo.value.failures
        assert failure.key == "bad"
        assert failure.kind == "error"
        assert "boom(3)" in failure.error

    def test_serial_cancels_pending_after_permanent_failure(
        self, monkeypatch
    ):
        faults.inject(
            monkeypatch, {"match": "t0", "action": "error", "attempts": None}
        )
        with pytest.raises(ResilienceError) as excinfo:
            ResilientPool(0, policy=FAST).run(_tasks(3))
        error = excinfo.value
        assert [f.key for f in error.failures] == ["t0"]
        assert set(error.cancelled) == {"t1", "t2"}
        assert error.completed == 0


# ----------------------------------------------------------------------
# Worker crash / hang recovery
# ----------------------------------------------------------------------
class TestProcessFailures:
    def test_worker_crash_recovers_bit_identically(self, monkeypatch):
        # t2's first attempt OOM-kill-style exits the worker, breaking
        # the pool; the respawned pool resubmits only unfinished tasks
        # and the result equals the failure-free run exactly.
        clean = ResilientPool(2, policy=FAST).run(_tasks(5))
        faults.inject(
            monkeypatch, {"match": "t2", "action": "kill", "attempts": [0]}
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no degradation warning
            crashed = ResilientPool(2, policy=FAST).run(_tasks(5))
        assert crashed == clean == _expected(5)

    def test_hang_past_deadline_recovers(self, monkeypatch):
        policy = RetryPolicy(
            max_retries=2,
            backoff_seconds=0.01,
            deadline_seconds=0.3,
            poll_seconds=0.02,
        )
        faults.inject(
            monkeypatch,
            {"match": "t1", "action": "delay", "seconds": 5.0,
             "attempts": [0]},
        )
        pool = ResilientPool(2, policy=policy)
        assert pool.run(_tasks(4)) == _expected(4)

    def test_degrades_to_serial_after_repeated_pool_death(
        self, monkeypatch
    ):
        # A deterministic crasher (kill on every attempt) breaks the
        # pool max_pool_failures times; the survivors then finish
        # inline in the parent — where the parent-pid guard keeps the
        # kill rule from firing — under a RuntimeWarning.
        policy = RetryPolicy(
            max_retries=6,
            backoff_seconds=0.01,
            max_pool_failures=2,
            poll_seconds=0.02,
        )
        faults.inject(
            monkeypatch, {"match": "t3", "action": "kill", "attempts": None}
        )
        pool = ResilientPool(2, policy=policy)
        with pytest.warns(RuntimeWarning, match="inline serially"):
            assert pool.run(_tasks(5)) == _expected(5)


# ----------------------------------------------------------------------
# Journaling + resume
# ----------------------------------------------------------------------
class TestJournalResume:
    def _pool(self, tmp_path, workers=0, policy=FAST):
        journal = RunJournal(tmp_path, "resume-run")
        return (
            ResilientPool(
                workers, policy=policy, journal=journal, codec=JSON_CODEC
            ),
            journal,
        )

    def test_completed_work_journals_on_failure(self, tmp_path, monkeypatch):
        faults.inject(
            monkeypatch, {"match": "t2", "action": "error", "attempts": None}
        )
        pool, journal = self._pool(tmp_path)
        with pytest.raises(ResilienceError):
            pool.run(_tasks(4))
        # Everything that finished before the failure is on disk.
        assert journal.completed_keys() == {"t0", "t1"}

    def test_resume_skips_journaled_tasks(self, tmp_path, monkeypatch):
        faults.inject(
            monkeypatch, {"match": "t2", "action": "error", "attempts": None}
        )
        pool, journal = self._pool(tmp_path)
        with pytest.raises(ResilienceError):
            pool.run(_tasks(4))
        # Second run: the old fault is gone, and a new standing fault
        # on the journaled keys proves they are loaded, not re-run.
        faults.inject(
            monkeypatch,
            {"match": "t0", "action": "error", "attempts": None},
            {"match": "t1", "action": "error", "attempts": None},
        )
        pool, _ = self._pool(tmp_path)
        assert pool.run(_tasks(4)) == _expected(4)

    def test_resumed_results_equal_uninterrupted(self, tmp_path, monkeypatch):
        uninterrupted = ResilientPool(0, policy=FAST).run(_tasks(4))
        faults.inject(
            monkeypatch, {"match": "t3", "action": "error", "attempts": None}
        )
        pool, _ = self._pool(tmp_path)
        with pytest.raises(ResilienceError):
            pool.run(_tasks(4))
        monkeypatch.delenv(faults.ENV_VAR)
        pool, journal = self._pool(tmp_path)
        assert pool.run(_tasks(4)) == uninterrupted
        journal.clear()

    def test_journal_hits_skip_on_result(self, tmp_path):
        pool, journal = self._pool(tmp_path)
        pool.run(_tasks(3))
        seen = []
        pool, _ = self._pool(tmp_path)
        pool.run(_tasks(3), on_result=lambda k, v: seen.append(k))
        assert seen == []  # all three were preloaded from the journal
        journal.clear()

    def test_undecodable_entry_recomputes(self, tmp_path):
        pool, journal = self._pool(tmp_path)
        pool.run(_tasks(2))
        entry = journal.lookup("t1")
        (entry / "value.json").write_text("{broken")
        pool, _ = self._pool(tmp_path)
        assert pool.run(_tasks(2)) == _expected(2)


# ----------------------------------------------------------------------
# Corpus-level end-to-end recovery
# ----------------------------------------------------------------------
from repro.pipeline.workbench import (  # noqa: E402
    GraphCorpusConfig,
    generate_corpus,
)

CORPUS_CONFIG = GraphCorpusConfig(
    datasets=("d1", "d2", "d3"),
    scale=0.02,
    max_pairs=1_500,
    families=("schema_based_syntactic",),
    schema_based_measures=("levenshtein", "jaccard"),
    max_attributes=1,
)


def _assert_same_records(first, second):
    """Bit-identity of two corpora (timings are wall-clock, excluded)."""
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert (a.dataset, a.family, a.function, a.category) == (
            b.dataset, b.family, b.function, b.category
        )
        assert a.ground_truth == b.ground_truth
        assert np.array_equal(a.graph.left, b.graph.left)
        assert np.array_equal(a.graph.right, b.graph.right)
        assert np.array_equal(a.graph.weight, b.graph.weight)


class TestCorpusResilience:
    @pytest.fixture(scope="class")
    def clean(self):
        return generate_corpus(CORPUS_CONFIG)

    def test_worker_crash_is_invisible_in_the_corpus(
        self, clean, monkeypatch
    ):
        faults.inject(
            monkeypatch, {"match": ":d2", "action": "kill", "attempts": [0]}
        )
        crashed = generate_corpus(
            CORPUS_CONFIG, workers=2, policy=FAST
        )
        _assert_same_records(clean, crashed)

    def test_interrupted_run_resumes_bit_identically(
        self, clean, tmp_path, monkeypatch
    ):
        # First run dies permanently on the d3 group after d1/d2
        # journaled; the resumed run recomputes only d3 and assembles
        # the exact failure-free corpus.
        faults.inject(
            monkeypatch, {"match": ":d3", "action": "error",
                          "attempts": None}
        )
        with pytest.raises(ResilienceError) as excinfo:
            generate_corpus(
                CORPUS_CONFIG, journal_dir=tmp_path, policy=FAST
            )
        assert any(":d3" in f.key for f in excinfo.value.failures)
        # Resume with the d3 fault cleared and the *journaled* groups
        # poisoned: success proves they were loaded, not re-run.
        faults.inject(
            monkeypatch,
            {"match": ":d1", "action": "error", "attempts": None},
            {"match": ":d2", "action": "error", "attempts": None},
        )
        resumed = generate_corpus(
            CORPUS_CONFIG, journal_dir=tmp_path, resume=True, policy=FAST
        )
        _assert_same_records(clean, resumed)

    def test_fresh_start_clears_a_stale_journal(self, tmp_path, monkeypatch):
        faults.inject(
            monkeypatch, {"match": ":d3", "action": "error",
                          "attempts": None}
        )
        with pytest.raises(ResilienceError):
            generate_corpus(
                CORPUS_CONFIG, journal_dir=tmp_path, policy=FAST
            )
        monkeypatch.delenv(faults.ENV_VAR)
        from repro.pipeline.resilience import RunJournal as RJ

        journal = RJ(tmp_path, f"corpus-{CORPUS_CONFIG.cache_key()}")
        assert journal.completed_keys()  # the interrupted run left work
        generate_corpus(CORPUS_CONFIG, journal_dir=tmp_path, policy=FAST)
        # Success clears the journal (the corpus cache takes over).
        assert journal.completed_keys() == set()

    def test_store_corruption_quarantines_and_recomputes(
        self, clean, tmp_path, monkeypatch
    ):
        from repro.pipeline.store import ArtifactStore

        store_dir = tmp_path / "store"
        cold = generate_corpus(CORPUS_CONFIG, artifact_store=store_dir)
        _assert_same_records(clean, cold)
        store = ArtifactStore(store_dir)
        assert store.entries()
        faults.truncate_store_payload(store, keep_bytes=24)
        warm = generate_corpus(CORPUS_CONFIG, artifact_store=store_dir)
        _assert_same_records(clean, warm)
        assert ArtifactStore(store_dir).quarantine_counts()[0] >= 1


# ----------------------------------------------------------------------
# Sweep-level failure reporting and resume
# ----------------------------------------------------------------------
class TestSweepResilience:
    @pytest.fixture(scope="class")
    def records(self):
        from tests.experiments.test_parallel_sweep import synthetic_records

        return synthetic_records(3)

    @pytest.fixture(scope="class")
    def config(self):
        from repro.experiments.config import ExperimentConfig

        return ExperimentConfig(bah_max_moves=100, bah_time_limit=30.0)

    def test_failed_cell_names_graph_and_codes(
        self, records, config, monkeypatch
    ):
        from repro.experiments.runner import run_matching_sweeps

        faults.inject(
            monkeypatch,
            {"match": ":fn1:", "action": "error", "attempts": None},
        )
        with pytest.raises(ResilienceError) as excinfo:
            run_matching_sweeps(records, config, policy=FAST)
        (failure,) = excinfo.value.failures
        assert "d1" in failure.key and "fn1" in failure.key

    def test_sweeps_resume_bit_identically(
        self, records, config, tmp_path, monkeypatch
    ):
        from repro.experiments.runner import run_matching_sweeps
        from repro.pipeline.resilience import RunJournal as RJ

        def flat(results):
            return [
                (r.dataset, code, [
                    (p.threshold, p.scores) for p in sweep.points
                ])
                for r in results
                for code, sweep in r.sweeps.items()
            ]

        baseline = run_matching_sweeps(records, config)
        journal = RJ(tmp_path, "sweep-resume")
        faults.inject(
            monkeypatch,
            {"match": ":fn2:", "action": "error", "attempts": None},
        )
        with pytest.raises(ResilienceError):
            run_matching_sweeps(
                records, config, policy=FAST, journal=journal
            )
        # Resume: fn2's fault gone, journaled graphs poisoned.
        faults.inject(
            monkeypatch,
            {"match": ":fn0:", "action": "error", "attempts": None},
            {"match": ":fn1:", "action": "error", "attempts": None},
        )
        resumed = run_matching_sweeps(
            records, config, policy=FAST, journal=journal
        )
        assert flat(resumed) == flat(baseline)

    def test_dirty_sweeps_report_failures(self, monkeypatch):
        from repro.experiments.dirty_er import run_dirty_er_sweeps
        from repro.graph.unipartite import UnipartiteGraph
        from repro.pipeline.workbench import DirtyGraphRecord

        rng = np.random.default_rng(3)
        m = 60
        records = [
            DirtyGraphRecord(
                graph=UnipartiteGraph.from_edges(
                    12,
                    [
                        (int(u), int(v), float(w))
                        for u, v, w in zip(
                            rng.integers(0, 12, m),
                            rng.integers(0, 12, m),
                            np.maximum(np.round(rng.random(m), 2), 0.01),
                        )
                        if u != v
                    ],
                ),
                dataset=f"d{index}",
                family="synthetic",
                function=f"fn{index}",
                category="BLC",
                ground_truth={(0, 1), (2, 3)},
            )
            for index in range(2)
        ]
        faults.inject(
            monkeypatch,
            {"match": ":fn1:", "action": "error", "attempts": None},
        )
        with pytest.raises(ResilienceError) as excinfo:
            run_dirty_er_sweeps(
                records, grid=(0.3, 0.6), policy=FAST
            )
        (failure,) = excinfo.value.failures
        assert "fn1" in failure.key


# ----------------------------------------------------------------------
# CLI behaviour: clean interrupt, failure reporting, sweep --resume
# ----------------------------------------------------------------------
class TestCliResilience:
    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        from repro import cli

        def interrupted(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._COMMANDS, "store", interrupted)
        assert cli.main(["store", "ls"]) == 130
        err = capsys.readouterr().err
        assert "--resume" in err

    def test_resilience_error_exits_1(self, monkeypatch, capsys):
        from repro import cli
        from repro.pipeline.resilience import TaskFailure

        def failed(args):
            raise ResilienceError(
                [TaskFailure("002:d7:jaccard:UMC", 3, "boom", "error")],
                ["003:d8:cosine:UMC"],
                2,
            )

        monkeypatch.setitem(cli._COMMANDS, "store", failed)
        assert cli.main(["store", "ls"]) == 1
        err = capsys.readouterr().err
        assert "002:d7:jaccard:UMC" in err

    def test_other_runtime_errors_propagate(self, monkeypatch):
        from repro import cli

        def broken(args):
            raise RuntimeError("unrelated")

        monkeypatch.setitem(cli._COMMANDS, "store", broken)
        with pytest.raises(RuntimeError, match="unrelated"):
            cli.main(["store", "ls"])

    @pytest.fixture
    def sweep_inputs(self, tmp_path):
        rng = np.random.default_rng(17)
        graph_path = tmp_path / "graph.csv"
        truth_path = tmp_path / "truth.csv"
        lines = ["left,right,weight"]
        for _ in range(80):
            lines.append(
                f"{rng.integers(0, 10)},{rng.integers(0, 10)},"
                f"{round(float(rng.random()), 2)}"
            )
        graph_path.write_text("\n".join(lines))
        truth_path.write_text(
            "\n".join(["left,right"] + [f"{i},{i}" for i in range(8)])
        )
        return graph_path, truth_path

    def test_sweep_resume_skips_finished_codes(
        self, sweep_inputs, tmp_path, monkeypatch, capsys
    ):
        from repro import cli

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        graph_path, truth_path = sweep_inputs
        argv = [
            "sweep", str(graph_path), str(truth_path), "--resume",
            "--algorithm", "all",
        ]
        clean_code = cli.main(argv)
        assert clean_code == 0
        clean_table = capsys.readouterr().out
        # Interrupt-equivalent: BMC (fifth in paper order) fails
        # permanently mid-run, after CNC/RSR/RCA/BAH journaled.
        faults.inject(
            monkeypatch, {"match": "BMC", "action": "error",
                          "attempts": None}
        )
        assert cli.main(argv) == 1
        capsys.readouterr()
        # Resume: BMC healed, every already-finished code poisoned on
        # all attempts — the table only completes via the journal.
        faults.inject(
            monkeypatch,
            *[
                {"match": code, "action": "error", "attempts": None}
                for code in ("CNC", "RSR", "RCA", "BAH")
            ],
        )
        assert cli.main(argv) == 0
        resumed_table = capsys.readouterr().out

        def scores_only(table):
            return [
                row.split()[:5]
                for row in table.splitlines()
                if row and not row.startswith(("Threshold", "-"))
            ]

        assert scores_only(resumed_table) == scores_only(clean_table)
