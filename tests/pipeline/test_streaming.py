"""The stream replay driver must reproduce the batch path bit-for-bit.

Batch equivalence is the tentpole guarantee of the incremental tier:
whatever the seed or batch size, the final compiled graph views and
every maintained partition must equal a single batch build over the
same records.  The synthetic corpora below share enough tokens to
produce dense candidate sets, weight ties and non-trivial clusters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pipeline.streaming import (
    COMPILED_VIEWS,
    batch_reference,
    canonical_clusters,
    replay_stream,
    stream_report,
)

MEASURE = "jaccard"
BLOCKING = "tokens"
THRESHOLD = 0.4


def corpus(n: int, seed: int) -> list[str]:
    rng = np.random.default_rng(seed)
    words = [
        "alpha", "beta", "gamma", "delta", "omega",
        "sigma", "kappa", "lambda",
    ]
    return [
        " ".join(rng.choice(words, size=int(rng.integers(2, 5))))
        for _ in range(n)
    ]


def replay(texts, **overrides):
    options = dict(
        measure=MEASURE,
        blocking=BLOCKING,
        threshold=THRESHOLD,
        seed=7,
        batch_size=13,
    )
    options.update(overrides)
    return replay_stream(texts, **options)


class TestBatchEquivalence:
    def test_report_is_fully_identical(self):
        texts = corpus(60, seed=11)
        report = stream_report(replay(texts), texts)
        assert report["graph_identical"], report["views"]
        assert all(report["partitions_identical"].values()), report
        assert report["n_edges"] == report["n_edges_batch"] > 0

    def test_invariant_to_batch_size_and_seed(self):
        texts = corpus(45, seed=3)
        reference = batch_reference(
            texts, measure=MEASURE, blocking=BLOCKING
        ).compiled()
        partitions = None
        for batch_size, seed in ((1, 0), (7, 99), (64, 7)):
            result = replay(texts, batch_size=batch_size, seed=seed)
            for name in COMPILED_VIEWS:
                np.testing.assert_array_equal(
                    getattr(result.compiled, name),
                    getattr(reference, name),
                    err_msg=f"{name} (batch_size={batch_size})",
                )
            streamed = result.partitions()
            if partitions is None:
                partitions = streamed
            assert streamed == partitions, (batch_size, seed)

    def test_pairs_scored_exactly_once(self):
        texts = corpus(50, seed=5)
        result = replay(texts, batch_size=9)
        reference = batch_reference(
            texts, measure=MEASURE, blocking=BLOCKING
        )
        # Every strict-upper-triangle candidate cell is scored once:
        # the batch candidate set minus diagonal and mirrored cells.
        pairs = {
            (int(u), int(v))
            for u, v in zip(result.compiled.source.u,
                            result.compiled.source.v)
        }
        expected = {
            (int(u), int(v))
            for u, v in zip(reference.u, reference.v)
        }
        assert pairs == expected
        assert result.n_edges == len(expected)

    def test_rebuild_probe_records_halfway_state(self):
        texts = corpus(40, seed=2)
        result = replay(texts, batch_size=6, rebuild_probe=True)
        assert result.rebuild_seconds is not None
        assert result.probe_records >= result.n_records // 2
        assert 0.0 <= result.probe_update_seconds <= result.update_seconds


class TestValidation:
    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithms"):
            replay(corpus(10, seed=1), algorithms=("CC", "BOGUS"))

    def test_rejects_mismatched_values(self):
        with pytest.raises(ValueError, match="parallel"):
            replay_stream(
                ["a", "b"],
                ["a"],
                measure=MEASURE,
                blocking=BLOCKING,
                threshold=THRESHOLD,
            )

    def test_subset_of_algorithms(self):
        texts = corpus(30, seed=4)
        result = replay(texts, algorithms=("cc",))
        assert result.algorithms == ("CC",)
        assert set(result.partitions()) == {"CC"}


def test_canonical_clusters_is_order_free():
    assert canonical_clusters([{2, 1}, {0}]) == [(0,), (1, 2)]
    assert canonical_clusters([{0}, {1, 2}]) == [(0,), (1, 2)]
