"""Differential and cache-behaviour tests of the similarity engine.

The engine must be *bit-identical* to the direct
``compute_similarity_matrix`` path for every family of the taxonomy,
and every shared artifact must be built exactly once per distinct key
regardless of how many specs consume it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.catalog import dataset_spec
from repro.datasets.generator import generate_dataset
from repro.pipeline import (
    ArtifactCache,
    SimilarityEngine,
    compute_similarity_matrix,
    enumerate_function_specs,
    group_specs,
)
from repro.pipeline.batched_strings import StringBatch, schema_based_matrix

# Small but full-coverage slice of the taxonomy: every schema-based
# measure, both n-gram units, every vector/graph/semantic measure and
# both semantic models.
_DATASET_SPEC = dataset_spec("d1", scale=0.05, max_pairs=2_000)
_ENUMERATE_KWARGS = dict(
    ngram_models=(("char", 2), ("token", 1)),
    max_attributes=1,
)
_SPECS = enumerate_function_specs(_DATASET_SPEC, **_ENUMERATE_KWARGS)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(_DATASET_SPEC, seed=7)


@pytest.fixture(scope="module")
def engine(dataset):
    return SimilarityEngine(dataset)


class TestDifferential:
    @pytest.mark.parametrize(
        "spec", _SPECS, ids=[spec.name for spec in _SPECS]
    )
    def test_engine_matches_direct_path(self, dataset, engine, spec):
        direct = compute_similarity_matrix(dataset, spec)
        via_engine = engine.compute(spec)
        assert via_engine.shape == direct.shape
        # Bit-identical, not approximately equal: the engine reuses
        # artifacts but must run the exact same kernels on them.
        assert np.array_equal(direct, via_engine)

    def test_families_covered(self):
        assert {spec.family for spec in _SPECS} == {
            "schema_based_syntactic",
            "schema_agnostic_syntactic",
            "schema_based_semantic",
            "schema_agnostic_semantic",
        }


class TestArtifactCache:
    def test_every_artifact_built_once(self, dataset):
        engine = SimilarityEngine(dataset)
        for _ in range(2):  # second sweep must be all cache hits
            for spec in _SPECS:
                engine.compute(spec)
        rebuilt = {
            key: count
            for key, count in engine.cache.build_counts.items()
            if count != 1
        }
        assert rebuilt == {}

    def test_expected_keys_present(self, dataset):
        engine = SimilarityEngine(dataset)
        for spec in _SPECS:
            engine.compute(spec)
        keys = set(engine.cache.build_counts)
        # One vector model per (unit, n, weighting) — not per measure.
        assert ("vector_model", "char", 2, "tf") in keys
        assert ("vector_model", "char", 2, "tfidf") in keys
        # One sparse entity-graph pair per (unit, n) — not per measure.
        assert ("entity_graphs", "token", 1) in keys
        # One semantic model instance per name — not per measure/source.
        assert ("semantic_model", "fasttext_like") in keys
        assert ("semantic_model", "albert_like") in keys
        # Token embeddings: one per (model, source).
        attribute = _DATASET_SPEC.schema_attributes[0]
        assert ("token_embeddings", "fasttext_like", None) in keys
        assert ("token_embeddings", "fasttext_like", attribute) in keys

    def test_counting_wrapper_counts_misses(self, dataset):
        cache = ArtifactCache(dataset)
        calls = []
        for _ in range(3):
            cache.get(("probe",), lambda: calls.append(1) or "value")
        assert calls == [1]
        assert cache.build_counts[("probe",)] == 1

    def test_miss_seconds_monotonic(self, dataset):
        engine = SimilarityEngine(dataset)
        spec = _SPECS[0]
        _, cold_artifact, _ = engine.compute_timed(spec)
        before = engine.cache.miss_seconds
        _, warm_artifact, _ = engine.compute_timed(spec)
        assert cold_artifact >= 0.0
        assert warm_artifact == 0.0
        assert engine.cache.miss_seconds == before


class TestStringBatch:
    def test_shared_batch_matches_fresh_computation(self, dataset):
        lefts = dataset.left.attribute_values("name")
        rights = dataset.right.attribute_values("name")
        batch = StringBatch(lefts, rights)
        for measure in ("levenshtein", "jaccard", "qgrams", "monge_elkan"):
            fresh = schema_based_matrix(lefts, rights, measure)
            shared = schema_based_matrix(lefts, rights, measure, batch)
            assert np.array_equal(fresh, shared), measure

    def test_artifacts_are_cached_properties(self, dataset):
        lefts = dataset.left.attribute_values("name")
        rights = dataset.right.attribute_values("name")
        batch = StringBatch(lefts, rights)
        assert batch.token_sparse is batch.token_sparse
        assert batch.encoded_rights is batch.encoded_rights


class TestGrouping:
    def test_concatenated_groups_preserve_spec_order(self):
        groups = group_specs(_SPECS)
        flattened = [spec for group in groups for spec in group.specs]
        assert flattened == _SPECS

    def test_groups_are_contiguous_runs(self):
        groups = group_specs(_SPECS)
        seen = set()
        for group in groups:
            assert group.key not in seen  # each key appears once
            seen.add(group.key)
            assert group.specs  # no empty groups

    def test_vector_and_graph_models_group_separately(self):
        keys = {group.key for group in group_specs(_SPECS)}
        assert ("vector", "char", 2) in keys
        assert ("graph", "char", 2) in keys
