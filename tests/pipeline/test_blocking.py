"""Blocking layer: candidate quality, admissibility and bit-identity.

Three property guarantees (hypothesis):

* blocked scoring equals the dense matrix on every retained cell,
* the prefix filter's upper bounds are admissible — no pair at or
  above the threshold token-set Jaccard is ever pruned,
* candidate sets are invariant under the kernel thread count.

Plus deterministic coverage of spec parsing/canonicalization, the
:class:`CandidateSet` API, the artifact-store codec, corpus cache-key
semantics and the CLI surface.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.datasets.generator import CleanCleanDataset, DatasetSpec
from repro.datasets.profile import EntityCollection, EntityProfile
from repro.pipeline.blocking import (
    BlockingIndex,
    CandidateSet,
    build_blocking_index,
    build_candidate_set,
    canonical_blocking,
    parse_blocking_spec,
)
from repro.pipeline.engine import SimilarityEngine
from repro.pipeline.graph_builder import pairs_to_graph
from repro.pipeline.kernels import kernel_threads
from repro.pipeline.similarity_functions import SimilarityFunctionSpec
from repro.pipeline.workbench import GraphCorpusConfig, generate_dirty_corpus
from repro.textsim.tokenize import tokens

strings = st.lists(
    st.text(alphabet="abcde _", min_size=1, max_size=12).filter(str.strip),
    min_size=1,
    max_size=8,
)


def _dataset(lefts, rights) -> CleanCleanDataset:
    """Minimal clean-clean dataset over explicit attribute values."""
    spec = DatasetSpec(
        code="t0",
        domain="synthetic",
        n_left=len(lefts),
        n_right=len(rights),
        n_duplicates=0,
        schema_attributes=("name",),
    )
    return CleanCleanDataset(
        spec=spec,
        left=EntityCollection(
            name="left",
            profiles=[
                EntityProfile(f"L{i}", {"name": v} if v else {})
                for i, v in enumerate(lefts)
            ],
        ),
        right=EntityCollection(
            name="right",
            profiles=[
                EntityProfile(f"R{j}", {"name": v} if v else {})
                for j, v in enumerate(rights)
            ],
        ),
        ground_truth=set(),
    )


def _measure_spec(measure: str) -> SimilarityFunctionSpec:
    return SimilarityFunctionSpec(
        family="schema_based_syntactic",
        details={"attribute": "name", "measure": measure},
        name=measure,
    )


class TestBlockedEqualsDense:
    # One measure per artifact path: alignment DP (plan), Jaro
    # (encoded), token matrix and the Monge-Elkan token grid.
    MEASURES = ("levenshtein", "jaro", "cosine_tokens", "monge_elkan")

    @given(lefts=strings, rights=strings)
    @settings(max_examples=25, deadline=None)
    def test_retained_cells_bitwise_equal(self, lefts, rights):
        dataset = _dataset(lefts, rights)
        dense = SimilarityEngine(dataset)
        blocked = SimilarityEngine(dataset, blocking="tokens:max_df=1")
        for measure in self.MEASURES:
            spec = _measure_spec(measure)
            matrix = dense.compute(spec)
            scores = blocked.compute_pairs(spec)
            assert not scores.fallback
            assert np.array_equal(
                matrix[scores.left, scores.right], scores.values
            ), measure

    def test_fallback_families_gather_dense_cells(self):
        dataset = _dataset(
            ["alpha beta", "beta gamma", "delta"],
            ["alpha gamma", "beta", "epsilon delta"],
        )
        dense = SimilarityEngine(dataset)
        blocked = SimilarityEngine(dataset, blocking="tokens:max_df=1")
        spec = SimilarityFunctionSpec(
            family="schema_agnostic_syntactic",
            details={
                "model": "vector", "unit": "char", "n": 2,
                "measure": "cosine_tf",
            },
            name="vector",
        )
        matrix = dense.compute(spec)
        scores = blocked.compute_pairs(spec)
        assert scores.fallback
        assert np.array_equal(
            matrix[scores.left, scores.right], scores.values
        )

    def test_compute_pairs_requires_blocking(self):
        engine = SimilarityEngine(_dataset(["a"], ["a"]))
        with pytest.raises(ValueError, match="blocking"):
            engine.compute_pairs(_measure_spec("levenshtein"))


class TestPrefixAdmissibility:
    @given(
        lefts=strings,
        rights=strings,
        threshold=st.sampled_from((0.2, 0.4, 0.6, 0.8, 1.0)),
    )
    @settings(max_examples=50, deadline=None)
    def test_no_qualifying_pair_is_pruned(self, lefts, rights, threshold):
        candidates = build_candidate_set(
            lefts, rights, f"prefix:threshold={threshold}"
        )
        retained = set(
            zip(candidates.left.tolist(), candidates.right.tolist())
        )
        for i, x in enumerate(lefts):
            x_tokens = set(tokens(x))
            for j, y in enumerate(rights):
                y_tokens = set(tokens(y))
                if not x_tokens or not y_tokens:
                    continue
                jaccard = len(x_tokens & y_tokens) / len(x_tokens | y_tokens)
                if jaccard >= threshold:
                    assert (i, j) in retained, (
                        f"pruned ({x!r}, {y!r}) with Jaccard "
                        f"{jaccard:.3f} >= {threshold}"
                    )


class TestDeterminism:
    @given(lefts=strings, rights=strings)
    @settings(max_examples=20, deadline=None)
    def test_invariant_under_thread_count(self, lefts, rights):
        spec = "tokens:max_df=1+minhash:bands=4,perms=8"
        base = build_candidate_set(lefts, rights, spec)
        with kernel_threads(3):
            threaded = build_candidate_set(lefts, rights, spec)
        assert np.array_equal(base.left, threaded.left)
        assert np.array_equal(base.right, threaded.right)
        assert base.stats == threaded.stats

    def test_engine_scores_invariant_under_threads(self):
        dataset = _dataset(
            ["alpha beta", "gamma delta", "alpha gamma"],
            ["alpha delta", "beta gamma", "alpha beta"],
        )
        serial = SimilarityEngine(dataset, blocking="tokens:max_df=1")
        threaded = SimilarityEngine(
            dataset, threads=3, blocking="tokens:max_df=1"
        )
        for measure in ("levenshtein", "monge_elkan"):
            spec = _measure_spec(measure)
            a = serial.compute_pairs(spec)
            b = threaded.compute_pairs(spec)
            assert np.array_equal(a.left, b.left)
            assert np.array_equal(a.values, b.values)


class TestProbeEqualsBatchRow:
    """The query-time index/batch equivalence the service rests on:
    for every left record the :class:`BlockingIndex` was built over,
    a single-record probe returns exactly the candidates the batch
    :class:`CandidateSet` yields for that row."""

    SPECS = (
        "tokens:max_df=0.5,q=0",
        "tokens:q=3,max_df=0.4",
        "prefix:threshold=0.4",
        "prefix:threshold=0.8",
        "minhash:bands=4,perms=8",
        "tokens+prefix:threshold=0.3+minhash:bands=2,perms=4",
    )

    @given(lefts=strings, rights=strings)
    @settings(max_examples=25, deadline=None)
    def test_probe_rows_match_batch_rows(self, lefts, rights):
        for spec in self.SPECS:
            candidates = build_candidate_set(lefts, rights, spec)
            index = build_blocking_index(lefts, rights, spec)
            for i, text in enumerate(lefts):
                batch_row = np.sort(
                    candidates.right[candidates.left == i]
                ).astype(np.int64)
                assert np.array_equal(index.probe(text), batch_row), (
                    spec,
                    i,
                    text,
                )

    @given(lefts=strings, rights=strings)
    @settings(max_examples=20, deadline=None)
    def test_probe_output_is_sorted_unique_and_bounded(
        self, lefts, rights
    ):
        index = build_blocking_index(
            lefts, rights, "tokens+minhash:bands=2,perms=4"
        )
        for text in (*lefts, "completely novel record", ""):
            ids = index.probe(text)
            assert ids.dtype == np.int64
            assert np.array_equal(ids, np.unique(ids))
            if ids.shape[0]:
                assert 0 <= ids[0] and ids[-1] < index.n_indexed

    def test_index_freezes_corpus_statistics(self):
        """Probing never mutates the index: the same query returns the
        same candidates regardless of what was probed in between."""
        lefts = ["alpha beta", "beta gamma", "delta"]
        rights = ["alpha gamma", "beta", "epsilon delta"]
        index = build_blocking_index(lefts, rights, "tokens")
        before = index.probe("alpha beta")
        for noise in ("zzz", "beta beta beta", "", "alpha"):
            index.probe(noise)
        assert np.array_equal(index.probe("alpha beta"), before)

    def test_novel_query_tokens_act_as_rarest(self):
        """An unseen token gets df=1 (what a batch containing the query
        would compute), so a prefix probe keeps it in the prefix and
        still recovers in-corpus candidates through shared tokens."""
        rights = ["alpha beta", "beta gamma"]
        index = build_blocking_index(
            ["alpha beta"], rights, "prefix:threshold=0.4"
        )
        # "unseen alpha" : 2 tokens at t=0.4 -> prefix keeps both, and
        # "alpha" still reaches right record 0 through the postings.
        assert 0 in index.probe("unseen alpha").tolist()

    def test_engine_memoizes_probe_index(self):
        engine = SimilarityEngine(
            _dataset(["alpha beta", "gamma"], ["alpha", "beta gamma"]),
            blocking="tokens",
        )
        spec = canonical_blocking("tokens")
        first = engine.cache.probe_index(spec)
        assert isinstance(first, BlockingIndex)
        assert engine.cache.probe_index(spec) is first
        assert engine.cache.build_counts[("probe_index", spec)] == 1

    def test_build_matches_canonical_scheme(self):
        index = build_blocking_index(["a"], ["a"], "tokens")
        assert index.scheme == canonical_blocking("tokens")
        assert index.n_indexed == 1


class TestIngest:
    """Warm-index growth: posting lists extend in place, the frozen
    build-time statistics don't move.  For the statistics-free schemes
    an ingest-grown index probes exactly like a from-scratch build
    over the grown collection."""

    @given(lefts=strings, rights=strings, extra=strings)
    @settings(max_examples=20, deadline=None)
    def test_minhash_ingest_probes_like_full_build(
        self, lefts, rights, extra
    ):
        spec = "minhash:bands=4,perms=8"
        grown = build_blocking_index(lefts, rights, spec)
        ids = grown.ingest(extra)
        assert ids.tolist() == list(
            range(len(rights), len(rights) + len(extra))
        )
        full = build_blocking_index(lefts, rights + extra, spec)
        assert grown.n_indexed == full.n_indexed
        for text in (*lefts, *extra, "novel record", ""):
            assert np.array_equal(grown.probe(text), full.probe(text))

    @given(lefts=strings, rights=strings, extra=strings)
    @settings(max_examples=20, deadline=None)
    def test_tokens_ingest_without_stop_tokens_matches_full_build(
        self, lefts, rights, extra
    ):
        # max_df=1.0 disables the stop-token filter, the only place
        # the tokens scheme consults corpus statistics — so ingest
        # must reproduce a full rebuild bit-for-bit.
        spec = "tokens:max_df=1.0"
        grown = build_blocking_index(lefts, rights, spec)
        grown.ingest(extra)
        full = build_blocking_index(lefts, rights + extra, spec)
        for text in (*lefts, *extra, "novel record"):
            assert np.array_equal(grown.probe(text), full.probe(text))

    @given(lefts=strings, rights=strings, extra=strings)
    @settings(max_examples=20, deadline=None)
    def test_ingest_is_monotone_and_discoverable(
        self, lefts, rights, extra
    ):
        # Composite spec including the df-dependent prefix scheme:
        # old candidates never change (frozen statistics), additions
        # are only ever new ids, and every ingested record is
        # discoverable by probing its own text.
        spec = "tokens+prefix:threshold=0.3"
        index = build_blocking_index(lefts, rights, spec)
        before = {text: index.probe(text) for text in lefts}
        ids = index.ingest(extra)
        for text in lefts:
            after = index.probe(text)
            old = after[after < len(rights)]
            assert np.array_equal(old, before[text])
        for record_id, text in zip(ids.tolist(), extra):
            if tokens(text):
                assert record_id in index.probe(text).tolist()

    def test_empty_ingest_is_a_noop(self):
        index = build_blocking_index(["alpha"], ["alpha beta"], "tokens")
        before = index.probe("alpha")
        assert index.ingest([]).shape == (0,)
        assert index.n_indexed == 1
        assert np.array_equal(index.probe("alpha"), before)


class TestSpecParsing:
    def test_defaults_are_canonicalized(self):
        assert canonical_blocking("tokens") == "tokens:max_df=0.5,q=0"
        assert canonical_blocking("tokens") == canonical_blocking(
            "tokens:q=0,max_df=0.5"
        )

    def test_scheme_order_and_duplicates_normalize(self):
        assert canonical_blocking("tokens+minhash") == canonical_blocking(
            "minhash+tokens"
        )
        assert canonical_blocking("tokens+tokens") == canonical_blocking(
            "tokens"
        )

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "unknown",
            "tokens:bogus=1",
            "tokens:max_df=0",
            "tokens:max_df=1.5",
            "tokens:q=1",
            "prefix:threshold=0",
            "prefix:threshold=1.5",
            "minhash:bands=0",
            "minhash:bands=3,perms=8",
        ],
    )
    def test_invalid_specs_are_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_blocking_spec(spec)


class TestCandidateSet:
    def test_union_deduplicates(self):
        a = build_candidate_set(["x y", "z"], ["x", "y"], "tokens")
        b = build_candidate_set(["x y", "z"], ["x", "y"], "prefix:threshold=0.1")
        union = a.union(b)
        folded = union.left * union.n_right + union.right
        assert len(np.unique(folded)) == union.n_pairs

    def test_empty_truth_recall_is_one(self):
        candidates = build_candidate_set(["a"], ["b"], "tokens")
        assert candidates.recall(set()) == 1.0

    def test_reduction_on_empty_candidates(self):
        candidates = CandidateSet(
            n_left=3,
            n_right=4,
            scheme="tokens:max_df=0.5,q=0",
            left=np.array([], dtype=np.intp),
            right=np.array([], dtype=np.intp),
            stats={},
        )
        assert candidates.reduction == 12.0

    def test_store_roundtrip(self, tmp_path):
        from repro.pipeline.store import ArtifactStore

        dataset = _dataset(
            ["alpha beta", "gamma"], ["alpha", "beta gamma"]
        )
        key = ("synthetic", 1.0, 100, 42)
        first = SimilarityEngine(
            dataset,
            store=ArtifactStore(tmp_path),
            dataset_key=key,
            blocking="tokens:max_df=1",
        )
        built = first.cache.candidate_set(first.blocking)
        second = SimilarityEngine(
            dataset,
            store=ArtifactStore(tmp_path),
            dataset_key=key,
            blocking="tokens:max_df=1",
        )
        loaded = second.cache.candidate_set(second.blocking)
        assert np.array_equal(built.left, loaded.left)
        assert np.array_equal(built.right, loaded.right)
        assert built.scheme == loaded.scheme
        assert built.stats == loaded.stats


class TestCorpusIntegration:
    def test_cache_key_unchanged_without_blocking(self):
        config = GraphCorpusConfig(datasets=("d1",), seed=7)
        assert config.cache_key() == GraphCorpusConfig(
            datasets=("d1",), seed=7, blocking=None
        ).cache_key()

    def test_cache_key_changes_with_blocking(self):
        config = GraphCorpusConfig(datasets=("d1",), seed=7)
        blocked = GraphCorpusConfig(
            datasets=("d1",), seed=7, blocking="tokens"
        )
        respelled = GraphCorpusConfig(
            datasets=("d1",), seed=7, blocking="tokens:q=0,max_df=0.5"
        )
        assert blocked.cache_key() != config.cache_key()
        assert blocked.cache_key() == respelled.cache_key()

    def test_dirty_corpus_accepts_blocking(self):
        """The self-join corpus mirrors the clean-clean semantics: a
        blocked dirty graph's edges are a subset of the dense dirty
        graph's, restricted to upper-triangle candidate pairs."""
        config = GraphCorpusConfig(
            datasets=("d1",),
            families=("schema_based_syntactic",),
            seed=7,
            schema_based_measures=("levenshtein",),
            max_attributes=1,
        )
        dense = generate_dirty_corpus(config)
        blocked = generate_dirty_corpus(config, blocking="tokens")
        assert len(dense) == len(blocked)
        for a, b in zip(dense, blocked):
            assert b.graph.metadata["blocking"].startswith("tokens")
            assert b.candidate_reduction >= 1.0
            dense_pairs = set(zip(a.graph.u.tolist(), a.graph.v.tolist()))
            blocked_pairs = set(
                zip(b.graph.u.tolist(), b.graph.v.tolist())
            )
            assert blocked_pairs <= dense_pairs
            assert (b.graph.u < b.graph.v).all()

    def test_pairs_to_graph_drops_nonpositive_scores(self):
        graph = pairs_to_graph(
            2,
            3,
            np.array([0, 0, 1]),
            np.array([0, 1, 2]),
            np.array([0.5, 0.0, -0.1]),
            normalize=False,
        )
        assert graph.n_edges == 1


class TestCli:
    def test_block_reports_quality(self, capsys):
        rc = main(
            [
                "block", "d1", "--scale", "0.05", "--max-pairs", "1000",
                "--blocking", "tokens",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "reduction" in out
        assert "recall" in out

    def test_store_ls_json(self, tmp_path, capsys):
        rc = main(
            [
                "store", "ls", "--json",
                "--artifact-store", str(tmp_path / "none"),
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["n_entries"] == 0
        assert payload["entries"] == []
        assert "quarantine" in payload
