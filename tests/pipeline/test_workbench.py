"""Workbench tests: corpus generation, caching and parallelism.

Covers the engine-driven ``generate_corpus`` path: the vectorized
zero-evidence filter, the per-stage timings, the deduplicated v2 cache
manifest (plus backward-compat reading of v1 manifests) and the
``workers`` knob's result-invariance.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.graph.bipartite import SimilarityGraph
from repro.graph.io import save_graph
from repro.pipeline.workbench import (
    GraphCorpusConfig,
    _all_matches_zero,
    generate_corpus,
)

#: Tiny two-dataset corpus exercising every family.
CONFIG = GraphCorpusConfig(
    datasets=("d1", "d2"),
    scale=0.03,
    max_pairs=2_000,
    schema_based_measures=("levenshtein", "jaccard"),
    ngram_models=(("token", 1),),
    vector_measures=("cosine_tf", "jaccard"),
    graph_measures=("containment", "overall"),
    semantic_models=("fasttext_like",),
    semantic_measures=("cosine",),
    max_attributes=1,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(CONFIG)


def _assert_same_corpus(first, second):
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert (a.dataset, a.family, a.function, a.category) == (
            b.dataset, b.family, b.function, b.category
        )
        assert a.ground_truth == b.ground_truth
        assert np.array_equal(a.graph.left, b.graph.left)
        assert np.array_equal(a.graph.right, b.graph.right)
        assert np.array_equal(a.graph.weight, b.graph.weight)


class TestZeroEvidenceFilter:
    def _reference(self, graph, ground_truth):
        edges = set(zip(graph.left.tolist(), graph.right.tolist()))
        return all(pair not in edges for pair in ground_truth)

    def _graph(self, edges, n_left=6, n_right=7):
        return SimilarityGraph.from_edges(n_left, n_right, edges)

    @pytest.mark.parametrize(
        "edges,truth",
        [
            ([], set()),
            ([], {(0, 0)}),
            ([(0, 0, 0.5)], set()),
            ([(0, 0, 0.5)], {(0, 0)}),
            ([(0, 1, 0.5), (2, 3, 0.1)], {(0, 0), (2, 3)}),
            ([(0, 1, 0.5)], {(0, 0), (1, 1)}),
            ([(5, 6, 0.9)], {(5, 6)}),
        ],
    )
    def test_matches_set_reference(self, edges, truth):
        graph = self._graph(edges)
        assert _all_matches_zero(graph, truth) == self._reference(
            graph, truth
        )

    def test_random_graphs_match_reference(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            n_left, n_right = rng.integers(1, 30, size=2)
            n_edges = int(rng.integers(0, 40))
            edges = [
                (int(rng.integers(n_left)), int(rng.integers(n_right)), 0.5)
                for _ in range(n_edges)
            ]
            truth = {
                (int(rng.integers(n_left)), int(rng.integers(n_right)))
                for _ in range(int(rng.integers(0, 10)))
            }
            graph = self._graph(edges, int(n_left), int(n_right))
            assert _all_matches_zero(graph, truth) == self._reference(
                graph, truth
            )


class TestStageTimings:
    def test_stages_partition_build_seconds(self, corpus):
        assert corpus
        for record in corpus:
            assert record.build_seconds > 0.0
            assert record.artifact_seconds >= 0.0
            assert record.matrix_seconds >= 0.0
            assert record.graph_seconds >= 0.0
            staged = (
                record.artifact_seconds
                + record.matrix_seconds
                + record.graph_seconds
            )
            assert staged <= record.build_seconds + 1e-6

    def test_artifacts_amortized_within_groups(self, corpus):
        # The first tf vector measure pays for the profile space and
        # the tf model; the second tf measure of the same (unit, n)
        # group hits the cache and builds nothing at all.
        by_function = {
            (r.dataset, r.function): r for r in corpus
        }
        first = by_function[("d1", "sa-syn:vec:token1:cosine_tf")]
        later = by_function[("d1", "sa-syn:vec:token1:jaccard")]
        assert first.artifact_seconds > 0.0
        assert later.artifact_seconds == 0.0


class TestWorkers:
    def test_parallel_equals_serial(self, corpus):
        parallel = generate_corpus(CONFIG, workers=2)
        _assert_same_corpus(corpus, parallel)

    def test_workers_config_field_equals_argument(self, corpus):
        import dataclasses

        config = dataclasses.replace(CONFIG, workers=2)
        parallel = generate_corpus(config)
        _assert_same_corpus(corpus, parallel)

    def test_workers_do_not_change_cache_key(self):
        import dataclasses

        config = dataclasses.replace(CONFIG, workers=8)
        assert config.cache_key() == CONFIG.cache_key()


class TestCacheManifest:
    def test_manifest_v2_dedupes_ground_truth(self, corpus, tmp_path):
        records = generate_corpus(CONFIG, cache_dir=tmp_path)
        manifest = json.loads(
            (tmp_path / CONFIG.cache_key() / "manifest.json").read_text()
        )
        assert manifest["version"] == 2
        # Ground truth once per dataset, not once per graph.
        assert set(manifest["ground_truth"]) == {"d1", "d2"}
        assert all("ground_truth" not in g for g in manifest["graphs"])
        assert len(manifest["graphs"]) == len(records)
        _assert_same_corpus(corpus, records)

    def test_cache_roundtrip(self, corpus, tmp_path):
        stored = generate_corpus(CONFIG, cache_dir=tmp_path)
        reloaded = generate_corpus(CONFIG, cache_dir=tmp_path)
        _assert_same_corpus(corpus, reloaded)
        for a, b in zip(stored, reloaded):
            assert b.build_seconds == a.build_seconds
            assert b.artifact_seconds == a.artifact_seconds

    def test_ground_truth_shared_object_on_load(self, tmp_path):
        generate_corpus(CONFIG, cache_dir=tmp_path)
        reloaded = generate_corpus(CONFIG, cache_dir=tmp_path)
        by_dataset: dict[str, list] = {}
        for record in reloaded:
            by_dataset.setdefault(record.dataset, []).append(record)
        for records in by_dataset.values():
            first = records[0].ground_truth
            assert all(r.ground_truth is first for r in records)

    def test_reads_legacy_v1_manifest(self, corpus, tmp_path):
        # Write the corpus in the pre-v2 layout: a JSON list with a
        # full ground-truth copy in every entry and no stage timings.
        cache_dir = tmp_path / CONFIG.cache_key()
        cache_dir.mkdir(parents=True)
        manifest = []
        for index, record in enumerate(corpus):
            filename = f"graph_{index:04d}.npz"
            save_graph(record.graph, cache_dir / filename)
            manifest.append(
                {
                    "file": filename,
                    "dataset": record.dataset,
                    "family": record.family,
                    "function": record.function,
                    "category": record.category,
                    "ground_truth": sorted(record.ground_truth),
                    "build_seconds": record.build_seconds,
                }
            )
        (cache_dir / "manifest.json").write_text(json.dumps(manifest))

        reloaded = generate_corpus(CONFIG, cache_dir=tmp_path)
        _assert_same_corpus(corpus, reloaded)
        for record in reloaded:
            assert record.artifact_seconds == 0.0
            assert record.matrix_seconds == 0.0
            assert record.graph_seconds == 0.0
