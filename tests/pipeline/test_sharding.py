"""Sharded execution tier: planner determinism, merge bit-identity.

Property guarantees (hypothesis):

* the merged shard graph equals the unsharded graph bit-for-bit on
  random corpora, for any shard count, dense and blocked alike,
* shard plans partition the row space exactly — disjoint, consecutive,
  complete — for any planner inputs.

Plus deterministic coverage of the budget heuristics, the
``score_shard`` artifact-store kind, the ``max_memory`` corpus path
(shard-count and worker-count invariance) and resume-after-kill
mid-shard through the :mod:`repro.testing.faults` harness.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.generator import CleanCleanDataset, DatasetSpec
from repro.datasets.profile import EntityCollection, EntityProfile
from repro.pipeline.engine import SimilarityEngine
from repro.pipeline.graph_builder import matrix_to_graph, pairs_to_graph
from repro.pipeline.resilience import ResilienceError, RetryPolicy
from repro.pipeline.sharding import (
    ShardPlanner,
    ShardRun,
    plan_for_dataset,
    score_shard_key,
)
from repro.pipeline.similarity_functions import SimilarityFunctionSpec
from repro.pipeline.store import ArtifactStore
from repro.pipeline.workbench import (
    GraphCorpusConfig,
    generate_corpus,
    generate_dirty_corpus,
)
from repro.testing import faults

strings = st.lists(
    st.text(alphabet="abcde _", min_size=1, max_size=12).filter(str.strip),
    min_size=1,
    max_size=8,
)

FAST = RetryPolicy(max_retries=2, backoff_seconds=0.01)


def _dataset(lefts, rights) -> CleanCleanDataset:
    """Minimal clean-clean dataset over explicit attribute values."""
    spec = DatasetSpec(
        code="t0",
        domain="synthetic",
        n_left=len(lefts),
        n_right=len(rights),
        n_duplicates=0,
        schema_attributes=("name",),
    )
    return CleanCleanDataset(
        spec=spec,
        left=EntityCollection(
            name="left",
            profiles=[
                EntityProfile(f"L{i}", {"name": v} if v else {})
                for i, v in enumerate(lefts)
            ],
        ),
        right=EntityCollection(
            name="right",
            profiles=[
                EntityProfile(f"R{j}", {"name": v} if v else {})
                for j, v in enumerate(rights)
            ],
        ),
        ground_truth=set(),
    )


def _measure_spec(measure: str) -> SimilarityFunctionSpec:
    return SimilarityFunctionSpec(
        family="schema_based_syntactic",
        details={"attribute": "name", "measure": measure},
        name=measure,
    )


def _graphs_equal(a, b) -> bool:
    return (
        np.array_equal(a.left, b.left)
        and np.array_equal(a.right, b.right)
        and np.array_equal(a.weight, b.weight)
    )


_CORPUS_CONFIG = GraphCorpusConfig(
    datasets=("d1",),
    families=("schema_based_syntactic",),
    seed=7,
    schema_based_measures=("levenshtein", "jaro"),
    max_attributes=1,
)


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
class TestShardPlanner:
    @given(
        n_left=st.integers(0, 5000),
        n_right=st.integers(0, 5000),
        n_shards=st.integers(1, 9),
    )
    @settings(max_examples=50, deadline=None)
    def test_ranges_partition_rows(self, n_left, n_right, n_shards):
        plan = ShardPlanner.plan(n_left, n_right, n_shards=n_shards)
        ranges = plan.ranges()
        assert ranges[0][0] == 0
        assert ranges[-1][1] == plan.n_left
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start
        assert all(start < stop for start, stop in ranges[:-1])

    def test_plan_is_deterministic(self):
        kwargs = dict(
            candidates_per_row=12.5, unique_fraction=0.4
        )
        first = ShardPlanner.plan(10_000, 2_000, 64 << 20, **kwargs)
        second = ShardPlanner.plan(10_000, 2_000, 64 << 20, **kwargs)
        assert first == second

    def test_no_budget_means_one_shard(self):
        plan = ShardPlanner.plan(10_000, 2_000)
        assert plan.n_shards == 1
        assert plan.ranges() == [(0, 10_000)]

    def test_smaller_budget_never_fewer_shards(self):
        small = ShardPlanner.plan(50_000, 4_000, 48 << 20)
        large = ShardPlanner.plan(50_000, 4_000, 256 << 20)
        assert small.n_shards >= large.n_shards
        assert large.n_shards >= 1

    def test_candidate_density_allows_larger_shards(self):
        dense = ShardPlanner.plan(50_000, 4_000, 64 << 20)
        blocked = ShardPlanner.plan(
            50_000, 4_000, 64 << 20, candidates_per_row=8.0
        )
        assert blocked.n_shards <= dense.n_shards

    def test_plan_for_dataset_uses_blocking_density(self):
        dataset = _dataset(
            ["alpha beta", "beta gamma", "delta"] * 5,
            ["alpha gamma", "beta", "epsilon delta"] * 5,
        )
        dense = plan_for_dataset(dataset)
        blocked = plan_for_dataset(dataset, blocking="tokens")
        assert dense.n_shards == blocked.n_shards == 1
        assert blocked.bytes_per_row <= dense.bytes_per_row

    def test_describe_mentions_every_shard(self):
        plan = ShardPlanner.plan(100, 50, n_shards=3)
        text = plan.describe()
        assert "3 shard(s)" in text
        for start, stop in plan.ranges():
            assert f"[{start}, {stop})" in text


# ----------------------------------------------------------------------
# Merge bit-identity (engine level)
# ----------------------------------------------------------------------
class TestMergedEqualsUnsharded:
    MEASURES = ("levenshtein", "jaro", "cosine_tokens")

    @given(lefts=strings, rights=strings, n_shards=st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_dense_merge_bitwise_equal(self, lefts, rights, n_shards):
        dataset = _dataset(lefts, rights)
        plan = ShardPlanner.plan(
            len(lefts), len(rights), n_shards=n_shards
        )
        engine = SimilarityEngine(dataset)
        for measure in self.MEASURES:
            spec = _measure_spec(measure)
            expected = matrix_to_graph(engine.compute(spec))
            merged = engine.compute_sharded(spec, shard_plan=plan)
            assert _graphs_equal(expected, merged), measure

    @given(lefts=strings, rights=strings, n_shards=st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_blocked_merge_bitwise_equal(self, lefts, rights, n_shards):
        dataset = _dataset(lefts, rights)
        plan = ShardPlanner.plan(
            len(lefts), len(rights), n_shards=n_shards
        )
        engine = SimilarityEngine(dataset, blocking="tokens:max_df=1")
        for measure in self.MEASURES:
            spec = _measure_spec(measure)
            pairs = engine.compute_pairs(spec)
            expected = pairs_to_graph(
                pairs.n_left,
                pairs.n_right,
                pairs.left,
                pairs.right,
                pairs.values,
            )
            merged = engine.compute_sharded(spec, shard_plan=plan)
            assert _graphs_equal(expected, merged), measure

    def test_shard_count_invariance(self):
        dataset = _dataset(
            ["alpha beta", "beta gamma", "delta", "", "epsilon"],
            ["alpha gamma", "beta", "epsilon delta", "zeta eta"],
        )
        engine = SimilarityEngine(dataset)
        spec = _measure_spec("levenshtein")
        graphs = [
            engine.compute_sharded(
                spec, shard_plan=ShardPlanner.plan(5, 4, n_shards=n)
            )
            for n in (1, 2, 5)
        ]
        assert _graphs_equal(graphs[0], graphs[1])
        assert _graphs_equal(graphs[0], graphs[2])

    def test_engine_level_shard_plan_default(self):
        dataset = _dataset(["abc", "abd"], ["abe", "acd"])
        plan = ShardPlanner.plan(2, 2, n_shards=2)
        engine = SimilarityEngine(dataset, shard_plan=plan)
        spec = _measure_spec("levenshtein")
        merged = engine.compute_sharded(spec)
        assert _graphs_equal(merged, matrix_to_graph(engine.compute(spec)))

    def test_compute_sharded_requires_a_plan(self):
        engine = SimilarityEngine(_dataset(["a"], ["b"]))
        with pytest.raises(ValueError, match="shard_plan"):
            engine.compute_sharded(_measure_spec("levenshtein"))


# ----------------------------------------------------------------------
# score_shard artifact kind
# ----------------------------------------------------------------------
class TestScoreShardStore:
    def test_codec_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = score_shard_key(_measure_spec("jaro"), "tokens", 0, 7)
        edges = (
            np.array([0, 1, 3], dtype=np.int64),
            np.array([2, 0, 1], dtype=np.int64),
            np.array([0.25, 1.0, 0.75]),
        )
        assert store.save(("t0",), key, edges)
        loaded = store.load(("t0",), key)
        for original, restored in zip(edges, loaded):
            assert np.array_equal(original, restored)
            assert original.dtype == restored.dtype

    def test_shard_run_reuses_stored_shards(self, tmp_path):
        dataset = _dataset(
            ["alpha beta", "beta gamma", "delta"],
            ["alpha gamma", "beta", "epsilon delta"],
        )
        store_root = tmp_path / "store"
        spec = _measure_spec("levenshtein")
        plan = ShardPlanner.plan(3, 3, n_shards=3)

        def build():
            engine = SimilarityEngine(
                dataset,
                store=ArtifactStore(store_root),
                dataset_key=("t0", "test"),
            )
            return ShardRun(engine, plan).run(spec)

        cold = build()
        kinds = {entry.kind for entry in ArtifactStore(store_root).entries()}
        assert "score_shard" in kinds
        warm = build()
        assert _graphs_equal(cold, warm)


# ----------------------------------------------------------------------
# max_memory corpus path
# ----------------------------------------------------------------------
class TestShardedCorpus:
    def test_budget_and_workers_invariant(self, tmp_path):
        baseline = generate_corpus(_CORPUS_CONFIG)
        # 1 MB is far below the fixed per-chunk overhead, so the
        # planner degrades to one-row shards — the most adversarial
        # split the merge can face.
        sharded = generate_corpus(_CORPUS_CONFIG, max_memory=1 << 20)
        pooled = generate_corpus(
            _CORPUS_CONFIG, max_memory=1 << 20, workers=2
        )
        assert len(baseline) == len(sharded) == len(pooled)
        for base, shard, pool in zip(baseline, sharded, pooled):
            assert base.function == shard.function == pool.function
            assert _graphs_equal(base.graph, shard.graph)
            assert _graphs_equal(base.graph, pool.graph)
            assert base.graph.metadata == shard.graph.metadata
            assert base.dedup_ratio == shard.dedup_ratio == pool.dedup_ratio

    def test_blocked_budget_invariant(self):
        blocked = generate_corpus(_CORPUS_CONFIG, blocking="tokens")
        sharded = generate_corpus(
            _CORPUS_CONFIG, blocking="tokens", max_memory=1 << 20
        )
        assert len(blocked) == len(sharded)
        for base, shard in zip(blocked, sharded):
            assert _graphs_equal(base.graph, shard.graph)
            assert base.graph.metadata == shard.graph.metadata
            assert base.candidate_reduction == shard.candidate_reduction

    def test_max_memory_excluded_from_cache_key(self):
        import dataclasses

        budgeted = dataclasses.replace(
            _CORPUS_CONFIG, max_memory=1 << 20
        )
        assert budgeted.cache_key() == _CORPUS_CONFIG.cache_key()

    def test_cache_round_trip(self, tmp_path):
        sharded = generate_corpus(
            _CORPUS_CONFIG, cache_dir=tmp_path, max_memory=1 << 20
        )
        reloaded = generate_corpus(
            _CORPUS_CONFIG, cache_dir=tmp_path
        )
        assert len(sharded) == len(reloaded)
        for built, loaded in zip(sharded, reloaded):
            assert _graphs_equal(built.graph, loaded.graph)

    def test_dirty_corpus_rejects_max_memory(self):
        import dataclasses

        config = dataclasses.replace(_CORPUS_CONFIG, max_memory=1 << 20)
        with pytest.raises(ValueError, match="max_memory"):
            generate_dirty_corpus(config)


# ----------------------------------------------------------------------
# Fault tolerance: retry and resume at shard granularity
# ----------------------------------------------------------------------
class TestShardFaults:
    def test_kill_mid_shard_recovers_bit_identically(
        self, monkeypatch, tmp_path
    ):
        baseline = generate_corpus(_CORPUS_CONFIG)
        # The first attempt of shard 1 OOM-kill-style exits its pool
        # worker; the respawned pool resubmits only that shard.
        faults.inject(
            monkeypatch, {"match": ":s001", "action": "kill", "attempts": [0]}
        )
        crashed = generate_corpus(
            _CORPUS_CONFIG,
            max_memory=1 << 20,
            workers=2,
            policy=FAST,
            journal_dir=tmp_path / "journal",
        )
        assert len(crashed) == len(baseline)
        for base, record in zip(baseline, crashed):
            assert _graphs_equal(base.graph, record.graph)

    def test_resume_after_permanent_shard_failure(
        self, monkeypatch, tmp_path
    ):
        baseline = generate_corpus(_CORPUS_CONFIG)
        journal_dir = tmp_path / "journal"
        faults.inject(
            monkeypatch,
            {"match": ":s002", "action": "error", "attempts": None},
        )
        with pytest.raises(ResilienceError):
            generate_corpus(
                _CORPUS_CONFIG,
                max_memory=1 << 20,
                policy=FAST,
                journal_dir=journal_dir,
            )
        # Completed shards journaled before the failure; the resumed
        # run recomputes only the missing ones and merges identically.
        monkeypatch.delenv(faults.ENV_VAR)
        resumed = generate_corpus(
            _CORPUS_CONFIG,
            max_memory=1 << 20,
            policy=FAST,
            journal_dir=journal_dir,
            resume=True,
        )
        assert len(resumed) == len(baseline)
        for base, record in zip(baseline, resumed):
            assert _graphs_equal(base.graph, record.graph)
            assert base.graph.metadata == record.graph.metadata
