"""Persistent artifact-store tests.

Covers the tentpole guarantees of :mod:`repro.pipeline.store`:

* every codec round-trips **bit-identically**;
* a corpus generated against a cold or warm store equals the
  store-less corpus bit for bit, and a warm store serves loads
  instead of builds;
* writes are atomic and write-once (concurrent workers race
  harmlessly);
* corrupted payloads and obsolete version stamps invalidate the entry
  instead of poisoning the run;
* ``gc`` honors the LRU size budget and ``purge`` empties the store.
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings

import numpy as np
import pytest

from repro.datasets.catalog import dataset_spec
from repro.datasets.generator import generate_dataset
from repro.pipeline.engine import ArtifactCache, SimilarityEngine
from repro.pipeline.similarity_functions import enumerate_function_specs
from repro.pipeline.store import (
    SCHEMA_VERSION,
    STORE_KINDS,
    ArtifactStore,
    dataset_store_key,
    parse_size_budget,
)
from repro.pipeline.workbench import GraphCorpusConfig, generate_corpus

#: Identity of the generated dataset used throughout this module.
_CODE, _SCALE, _MAX_PAIRS, _SEED = "d1", 0.03, 2_000, 7
DATASET_KEY = dataset_store_key(_CODE, _SCALE, _MAX_PAIRS, _SEED)

#: Tiny corpus crossing every family and every persisted string kind.
CONFIG = GraphCorpusConfig(
    datasets=("d1",),
    scale=_SCALE,
    max_pairs=_MAX_PAIRS,
    seed=_SEED,
    schema_based_measures=("levenshtein", "jaro", "jaccard", "monge_elkan"),
    ngram_models=(("token", 1),),
    vector_measures=("cosine_tf", "cosine_tfidf"),
    graph_measures=("containment", "overall"),
    semantic_models=("fasttext_like",),
    max_attributes=1,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        dataset_spec(_CODE, scale=_SCALE, max_pairs=_MAX_PAIRS), seed=_SEED
    )


@pytest.fixture(scope="module")
def specs(dataset):
    return enumerate_function_specs(
        dataset.spec,
        schema_based_measures=CONFIG.schema_based_measures,
        ngram_models=CONFIG.ngram_models,
        vector_measures=CONFIG.vector_measures,
        graph_measures=CONFIG.graph_measures,
        semantic_models=CONFIG.semantic_models,
        max_attributes=1,
    )


def _assert_csr_equal(a, b):
    assert np.array_equal(a.data, b.data)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.indptr, b.indptr)
    assert a.shape == b.shape


def _assert_same_corpus(first, second):
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert (a.dataset, a.family, a.function) == (
            b.dataset, b.family, b.function
        )
        assert np.array_equal(a.graph.left, b.graph.left)
        assert np.array_equal(a.graph.right, b.graph.right)
        assert np.array_equal(a.graph.weight, b.graph.weight)


class TestCodecRoundtrip:
    """Every persisted kind must round-trip bit for bit."""

    @pytest.fixture(scope="class")
    def cache(self, dataset):
        cache = ArtifactCache(dataset)
        attribute = dataset.spec.schema_attributes[0]
        cache.string_batch(attribute).plan  # materialize the unique universe
        return cache

    def _roundtrip(self, tmp_path, cache_key, value):
        store = ArtifactStore(tmp_path)
        assert store.save(DATASET_KEY, cache_key, value) is True
        loaded = store.load(DATASET_KEY, cache_key)
        assert loaded is not None
        return loaded

    def test_entity_graphs(self, cache, tmp_path):
        value = cache.entity_graphs("token", 1)
        loaded = self._roundtrip(tmp_path, ("entity_graphs", "token", 1), value)
        _assert_csr_equal(loaded[0], value[0])
        _assert_csr_equal(loaded[1], value[1])

    def test_graph_intermediates(self, cache, tmp_path):
        ratio = cache.graph_ratio_sums("token", 1)
        common = cache.graph_common_edges("token", 1)
        loaded_ratio = self._roundtrip(tmp_path, ("graph_ratio", "token", 1), ratio)
        loaded_common = self._roundtrip(tmp_path, ("graph_common", "token", 1), common)
        assert np.array_equal(loaded_ratio, ratio)
        assert loaded_ratio.dtype == ratio.dtype
        assert np.array_equal(loaded_common, common)

    def test_vector_model_pair(self, cache, tmp_path):
        value = cache.vector_models("token", 1, "tfidf")
        loaded = self._roundtrip(
            tmp_path, ("vector_model", "token", 1, "tfidf"), value
        )
        for built, restored in zip(value, loaded):
            _assert_csr_equal(restored.matrix, built.matrix)
            _assert_csr_equal(restored.binary, built.binary)
            assert np.array_equal(
                restored.document_frequency, built.document_frequency
            )
            assert restored.vocabulary == built.vocabulary
        assert loaded[0].vocabulary is loaded[1].vocabulary  # shared dict

    def test_token_embeddings(self, cache, tmp_path):
        value = cache.token_embeddings("fasttext_like", None)
        loaded = self._roundtrip(
            tmp_path, ("token_embeddings", "fasttext_like", None), value
        )
        for built_side, restored_side in zip(value, loaded):
            assert len(built_side) == len(restored_side)
            for built, restored in zip(built_side, restored_side):
                assert np.array_equal(restored, built)
                assert restored.dtype == built.dtype
                assert restored.shape == built.shape

    def test_text_embeddings(self, cache, tmp_path):
        value = cache.text_embeddings("fasttext_like", None)
        loaded = self._roundtrip(
            tmp_path, ("text_embeddings", "fasttext_like", None), value
        )
        assert np.array_equal(loaded[0], value[0])
        assert np.array_equal(loaded[1], value[1])

    def test_string_unique_encoded(self, cache, dataset, tmp_path):
        attribute = dataset.spec.schema_attributes[0]
        batch = cache.string_batch(attribute)
        value = (batch.unique_left_encoding, batch.unique_right_encoding)
        loaded = self._roundtrip(
            tmp_path, ("string_unique_encoded", attribute), value
        )
        for built_pair, restored_pair in zip(value, loaded):
            assert np.array_equal(restored_pair[0], built_pair[0])
            assert restored_pair[0].dtype == built_pair[0].dtype
            assert np.array_equal(restored_pair[1], built_pair[1])

    def test_string_unique_tokens(self, cache, dataset, tmp_path):
        attribute = dataset.spec.schema_attributes[0]
        value = cache.string_batch(attribute).unique_token_sparse
        loaded = self._roundtrip(
            tmp_path, ("string_unique_tokens", attribute), value
        )
        _assert_csr_equal(loaded[0], value[0])
        _assert_csr_equal(loaded[1], value[1])

    def test_monge_elkan_grid(self, cache, dataset, tmp_path):
        attribute = dataset.spec.schema_attributes[0]
        value = cache.string_batch(attribute).monge_elkan_grid
        loaded = self._roundtrip(
            tmp_path, ("string_token_grid", attribute), value
        )
        for built_ids, restored_ids in zip(value[0], loaded[0]):
            assert np.array_equal(restored_ids, built_ids)
            assert restored_ids.dtype == built_ids.dtype
        for built_ids, restored_ids in zip(value[1], loaded[1]):
            assert np.array_equal(restored_ids, built_ids)
        assert np.array_equal(loaded[2], value[2])

    def test_unregistered_kind_is_not_persisted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.save(DATASET_KEY, ("string_plan", "name"), object()) is False
        assert store.load(DATASET_KEY, ("string_plan", "name")) is None
        assert store.entries() == []

    def test_seed_artifact_rejects_unknown_slots(self, dataset):
        # The engine seeds StringBatch slots by name; a renamed
        # cached_property must fail loudly, not silently turn store
        # hits into rebuilds.
        from repro.pipeline.batched_strings import StringBatch

        batch = StringBatch(["a"], ["b"])
        with pytest.raises(AttributeError):
            batch.seed_artifact("unique_token_matrices", object())
        batch.seed_artifact("unique_token_sparse", "seeded")
        assert batch.__dict__["unique_token_sparse"] == "seeded"


class TestColdWarmEquivalence:
    def test_cold_and_warm_match_storeless(self, tmp_path):
        baseline = generate_corpus(CONFIG)
        cold = generate_corpus(CONFIG, artifact_store=tmp_path)
        warm = generate_corpus(CONFIG, artifact_store=tmp_path)
        _assert_same_corpus(baseline, cold)
        _assert_same_corpus(baseline, warm)
        assert ArtifactStore(tmp_path).entries()  # the store was used

    def test_warm_engine_loads_instead_of_building(self, dataset, specs, tmp_path):
        store = ArtifactStore(tmp_path)
        cold = SimilarityEngine(dataset, store=store, dataset_key=DATASET_KEY)
        cold_matrices = [cold.compute(spec) for spec in specs]
        assert not cold.cache.load_counts  # nothing to load yet
        persisted = {
            key for key in cold.cache.build_counts if key[0] in STORE_KINDS
        }
        assert persisted  # the spec slice exercises persistable kinds

        warm = SimilarityEngine(dataset, store=store, dataset_key=DATASET_KEY)
        warm_matrices = [warm.compute(spec) for spec in specs]
        rebuilt = {
            key for key in warm.cache.build_counts if key[0] in STORE_KINDS
        }
        assert rebuilt == set()  # every persistable artifact was loaded
        assert set(warm.cache.load_counts) == persisted
        for built, loaded in zip(cold_matrices, warm_matrices):
            assert np.array_equal(built, loaded)

    def test_warm_loads_count_as_artifact_seconds(self, dataset, specs, tmp_path):
        store = ArtifactStore(tmp_path)
        warm = SimilarityEngine(dataset, store=store, dataset_key=DATASET_KEY)
        semantic = [s for s in specs if s.family == "schema_agnostic_semantic"]
        _, artifact_seconds, _ = warm.compute_timed(semantic[0])
        assert artifact_seconds > 0.0  # loading is charged to the stage

    def test_different_dataset_keys_do_not_collide(self, dataset, tmp_path):
        store = ArtifactStore(tmp_path)
        other_key = dataset_store_key(_CODE, _SCALE, _MAX_PAIRS, _SEED + 1)
        cache_key = ("graph_ratio", "token", 1)
        store.save(DATASET_KEY, cache_key, np.ones((2, 2)))
        assert store.load(other_key, cache_key) is None

    def test_store_requires_dataset_key(self, dataset, tmp_path):
        with pytest.raises(ValueError):
            ArtifactCache(dataset, store=ArtifactStore(tmp_path))

    def test_engine_rejects_store_alongside_explicit_cache(
        self, dataset, tmp_path
    ):
        # A store passed next to an explicit cache would be silently
        # ignored — surface the conflict instead.
        with pytest.raises(ValueError):
            SimilarityEngine(
                dataset,
                cache=ArtifactCache(dataset),
                store=ArtifactStore(tmp_path),
                dataset_key=DATASET_KEY,
            )

    def test_default_scale_resolves_from_environment(self, monkeypatch):
        # scale=None means "the REPRO_SCALE default", which differs
        # between environments — the key must capture the resolved
        # value, never the None.
        monkeypatch.setenv("REPRO_SCALE", "0.02")
        small = dataset_store_key("d1", None, None, 42)
        monkeypatch.setenv("REPRO_SCALE", "0.08")
        large = dataset_store_key("d1", None, None, 42)
        assert small != large
        assert None not in small and None not in large

    def test_dataset_code_case_variants_share_a_key(self):
        # dataset_spec lowercases codes, so "D1" and "d1" generate the
        # bit-identical dataset — their artifacts must share entries.
        assert dataset_store_key("D1", 0.05, 1_000, 42) == dataset_store_key(
            "d1", 0.05, 1_000, 42
        )


class TestWriteOnce:
    def test_second_writer_discards(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cache_key = ("graph_ratio", "token", 1)
        assert store.save(DATASET_KEY, cache_key, np.zeros(3)) is True
        committed = store.entries()[0]
        assert store.save(DATASET_KEY, cache_key, np.ones(3)) is False
        assert np.array_equal(
            store.load(DATASET_KEY, cache_key), np.zeros(3)
        )
        assert store.entries()[0].created == committed.created

    def test_no_temp_files_survive_a_write(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save(DATASET_KEY, ("graph_ratio", "token", 1), np.zeros(3))
        assert list(tmp_path.glob("*.tmp-*")) == []

    def test_parallel_workers_share_a_cold_store(self, tmp_path):
        config = dataclasses.replace(CONFIG, datasets=("d1", "d2"))
        serial = generate_corpus(config)
        parallel = generate_corpus(config, artifact_store=tmp_path, workers=2)
        _assert_same_corpus(serial, parallel)
        rewarmed = generate_corpus(config, artifact_store=tmp_path, workers=2)
        _assert_same_corpus(serial, rewarmed)

    def test_workers_and_store_do_not_change_cache_key(self):
        config = dataclasses.replace(
            CONFIG, workers=8, artifact_store="/tmp/somewhere"
        )
        assert config.cache_key() == CONFIG.cache_key()


class TestInvalidation:
    def _committed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cache_key = ("graph_ratio", "token", 1)
        store.save(DATASET_KEY, cache_key, np.arange(4.0))
        key = store.entry_key(DATASET_KEY, cache_key)
        return store, cache_key, key

    def test_corrupted_payload_is_quarantined(self, tmp_path):
        store, cache_key, key = self._committed(tmp_path)
        (tmp_path / f"{key}.npz").write_bytes(b"not an npz")
        assert store.load(DATASET_KEY, cache_key) is None
        # Moved aside — gone from the root, preserved in quarantine.
        assert not (tmp_path / f"{key}.npz").exists()
        assert not (tmp_path / f"{key}.json").exists()
        assert (store.quarantine_root / f"{key}.npz").exists()
        n_entries, nbytes = store.quarantine_counts()
        assert n_entries == 1 and nbytes > 0
        # The rebuild recommits over the quarantined entry.
        assert store.save(DATASET_KEY, cache_key, np.arange(4.0)) is True
        value = store.load(DATASET_KEY, cache_key)
        np.testing.assert_array_equal(value, np.arange(4.0))

    def test_truncated_npz_is_quarantined_and_recomputed(self, tmp_path):
        # A torn write / dying disk: the payload keeps its npz magic
        # but loses its tail.  The read must quarantine and report a
        # miss — never crash, never retry-loop on the bad bytes.
        from repro.testing.faults import truncate_store_payload

        store, cache_key, key = self._committed(tmp_path)
        truncate_store_payload(store, keep_bytes=24)
        assert store.load(DATASET_KEY, cache_key) is None
        assert store.quarantine_counts()[0] == 1
        assert store.load(DATASET_KEY, cache_key) is None  # still a miss
        assert store.save(DATASET_KEY, cache_key, np.arange(4.0)) is True
        np.testing.assert_array_equal(
            store.load(DATASET_KEY, cache_key), np.arange(4.0)
        )

    def test_manifest_without_payload_is_quarantined(self, tmp_path):
        # A committed manifest whose payload vanished (partial copy of
        # the store directory, disk reclaim): without quarantining the
        # manifest, save() would refuse the key forever.
        store, cache_key, key = self._committed(tmp_path)
        (tmp_path / f"{key}.npz").unlink()
        assert store.load(DATASET_KEY, cache_key) is None
        assert not (tmp_path / f"{key}.json").exists()
        assert (store.quarantine_root / f"{key}.json").exists()
        assert store.save(DATASET_KEY, cache_key, np.arange(4.0)) is True
        np.testing.assert_array_equal(
            store.load(DATASET_KEY, cache_key), np.arange(4.0)
        )

    def test_corrupt_manifest_is_quarantined_not_wedged(self, tmp_path):
        # Manifest writes are atomic, so unparseable JSON means a
        # corrupted committed entry: it must be moved aside and
        # rebuilt, not treated as in-flight (which would wedge the key
        # forever — save() refuses while the manifest exists).
        store, cache_key, key = self._committed(tmp_path)
        (tmp_path / f"{key}.json").write_text("{not json")
        assert store.load(DATASET_KEY, cache_key) is None
        assert not (tmp_path / f"{key}.json").exists()
        assert not (tmp_path / f"{key}.npz").exists()
        assert store.quarantine_counts()[0] == 1
        assert store.save(DATASET_KEY, cache_key, np.arange(4.0)) is True

    def test_purge_clears_quarantine(self, tmp_path):
        store, cache_key, key = self._committed(tmp_path)
        (tmp_path / f"{key}.npz").write_bytes(b"junk")
        assert store.load(DATASET_KEY, cache_key) is None
        assert store.quarantine_counts()[0] == 1
        store.purge()
        assert store.quarantine_counts() == (0, 0)

    def test_gc_sweeps_old_quarantined_files(self, tmp_path):
        store, cache_key, key = self._committed(tmp_path)
        (tmp_path / f"{key}.npz").write_bytes(b"junk")
        assert store.load(DATASET_KEY, cache_key) is None
        for corpse in store.quarantined():
            os.utime(corpse, (1_000_000, 1_000_000))
        store.gc()
        assert store.quarantine_counts() == (0, 0)

    def test_gc_reclaims_old_corrupt_manifests(self, tmp_path):
        store, cache_key, key = self._committed(tmp_path)
        (tmp_path / f"{key}.json").write_text("{not json")
        long_ago = (1_000_000, 1_000_000)
        os.utime(tmp_path / f"{key}.json", long_ago)
        os.utime(tmp_path / f"{key}.npz", long_ago)
        store.gc()
        assert not (tmp_path / f"{key}.json").exists()
        assert not (tmp_path / f"{key}.npz").exists()

    def test_obsolete_schema_version_is_deleted(self, tmp_path):
        store, cache_key, key = self._committed(tmp_path)
        manifest_path = tmp_path / f"{key}.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = SCHEMA_VERSION - 1
        manifest_path.write_text(json.dumps(manifest))
        assert store.load(DATASET_KEY, cache_key) is None
        assert not manifest_path.exists()

    def test_foreign_repro_version_is_deleted(self, tmp_path):
        store, cache_key, key = self._committed(tmp_path)
        manifest_path = tmp_path / f"{key}.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["repro_version"] = "0.0.0"
        manifest_path.write_text(json.dumps(manifest))
        assert store.load(DATASET_KEY, cache_key) is None
        assert not manifest_path.exists()

    def test_uncommitted_payload_is_a_miss_but_not_deleted(self, tmp_path):
        # A payload without its manifest is an in-flight write of a
        # concurrent worker: readers must not delete it.
        store, cache_key, key = self._committed(tmp_path)
        (tmp_path / f"{key}.json").unlink()
        assert store.load(DATASET_KEY, cache_key) is None
        assert (tmp_path / f"{key}.npz").exists()

    @pytest.mark.parametrize(
        "error", [OSError("disk full"), ValueError("codec edge case")]
    )
    def test_failed_save_does_not_kill_the_run(self, dataset, tmp_path, error):
        # The store is an optimization: a full disk, a racing cleanup
        # or a codec edge case during commit must not abort a run that
        # already holds the built artifact.
        class ExplodingStore(ArtifactStore):
            def save(self, dataset_key, cache_key, value):
                raise error

        cache = ArtifactCache(
            dataset, store=ExplodingStore(tmp_path), dataset_key=DATASET_KEY
        )
        with pytest.warns(RuntimeWarning, match="was not persisted"):
            ratio = cache.graph_ratio_sums("token", 1)
        assert ratio is not None
        assert cache.build_counts[("graph_ratio", "token", 1)] == 1


class TestGcAndBudget:
    def _filled(self, tmp_path, count=4):
        store = ArtifactStore(tmp_path)
        keys = []
        for index in range(count):
            cache_key = ("graph_ratio", "token", index)
            store.save(DATASET_KEY, cache_key, np.full(64, float(index)))
            keys.append(cache_key)
        # Deterministic LRU order: age the manifests oldest-first.
        for age, cache_key in enumerate(keys):
            manifest = tmp_path / (
                store.entry_key(DATASET_KEY, cache_key) + ".json"
            )
            stamp = 1_000_000 + age
            os.utime(manifest, (stamp, stamp))
        return store, keys

    def test_gc_honors_size_budget_lru(self, tmp_path):
        store, keys = self._filled(tmp_path)
        per_entry = store.entries()[0].nbytes
        evicted = store.gc(per_entry * 2 + per_entry // 2)  # room for 2
        assert {entry.params[-1] for entry in evicted} == {0, 1}  # oldest
        assert store.load(DATASET_KEY, keys[0]) is None
        assert store.load(DATASET_KEY, keys[3]) is not None
        assert store.total_bytes() <= per_entry * 2 + per_entry // 2

    def test_gc_is_strict_lru_across_entry_sizes(self, tmp_path):
        # Once a hot entry overflows the budget, every colder entry
        # must go too — a small cold entry must never outlive a hot
        # one that was evicted for size.
        store = ArtifactStore(tmp_path)
        sizes = {0: 4096, 1: 3072, 2: 512}  # params -> rough payload
        for index, floats in sizes.items():
            store.save(
                DATASET_KEY,
                ("text_embeddings", "m", index),
                (
                    np.random.default_rng(index).random(floats // 16),
                    np.zeros(1),
                ),
            )
        entries = {e.params[-1]: e for e in store.entries()}
        # Recency (hot to cold): 0, 1, 2.
        for age, index in enumerate((2, 1, 0)):
            manifest = tmp_path / f"{entries[index].key}.json"
            os.utime(manifest, (1_000_000 + age, 1_000_000 + age))
        budget = entries[0].nbytes + entries[2].nbytes  # 1 won't fit
        evicted = {e.params[-1] for e in store.gc(budget)}
        # Knapsack-style gc would keep the small cold 2; strict LRU
        # evicts it along with 1.
        assert evicted == {1, 2}

    def test_undeletable_stale_entry_degrades_to_a_miss(
        self, tmp_path, monkeypatch
    ):
        # Invalidation on a store the process cannot delete from
        # (shared read-only tier) must report a miss, not crash.
        store = ArtifactStore(tmp_path)
        cache_key = ("graph_ratio", "token", 1)
        store.save(DATASET_KEY, cache_key, np.arange(4.0))
        key = store.entry_key(DATASET_KEY, cache_key)
        manifest_path = tmp_path / f"{key}.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["repro_version"] = "0.0.0"
        manifest_path.write_text(json.dumps(manifest))

        from pathlib import Path

        real_unlink = Path.unlink

        def deny(self, missing_ok=False):
            if self.parent == tmp_path:
                raise PermissionError(f"read-only store: {self}")
            return real_unlink(self, missing_ok=missing_ok)

        monkeypatch.setattr(Path, "unlink", deny)
        assert store.load(DATASET_KEY, cache_key) is None  # no crash
        assert manifest_path.exists()  # deletion failed, entry stays
        assert store.purge() == 0  # best-effort, honestly counted

    def test_load_refreshes_lru_recency(self, tmp_path):
        store, keys = self._filled(tmp_path)
        per_entry = store.entries()[0].nbytes
        assert store.load(DATASET_KEY, keys[0]) is not None  # touch oldest
        evicted = store.gc(per_entry * 2 + per_entry // 2)
        evicted_params = {entry.params[-1] for entry in evicted}
        assert 0 not in evicted_params  # survived: recently used
        assert evicted_params == {1, 2}

    def test_budget_on_store_enforced_after_writes(self, tmp_path):
        store = ArtifactStore(tmp_path, size_budget="2K")
        for index in range(8):
            store.save(
                DATASET_KEY,
                ("graph_ratio", "token", index),
                np.full(64, float(index)),
            )
        assert store.total_bytes() <= 2048
        assert store.entries()  # but not emptied

    def test_budget_enforcement_is_amortized(self, tmp_path):
        # The full gc scan must only run when the tracked byte total
        # crosses the budget, not after every committed write.
        scans = []

        class CountingStore(ArtifactStore):
            def gc(self, size_budget=None):
                scans.append(size_budget)
                return super().gc(size_budget)

        store = CountingStore(tmp_path, size_budget="1G")
        for index in range(8):
            store.save(
                DATASET_KEY,
                ("graph_ratio", "token", index),
                np.full(64, float(index)),
            )
        assert scans == []  # far under budget: no scan at all

    def test_gc_sweeps_stale_entries_without_budget(self, tmp_path):
        store, keys = self._filled(tmp_path, count=2)
        manifest = tmp_path / (store.entry_key(DATASET_KEY, keys[0]) + ".json")
        payload = json.loads(manifest.read_text())
        payload["schema_version"] = SCHEMA_VERSION + 1
        manifest.write_text(json.dumps(payload))
        evicted = store.gc()
        assert len(evicted) == 1 and evicted[0].stale
        assert len(store.entries()) == 1

    def test_purge_empties_the_store(self, tmp_path):
        store, _ = self._filled(tmp_path)
        assert store.purge() == 4
        assert store.entries() == []
        assert store.total_bytes() == 0

    def test_cleanup_spares_young_uncommitted_files(self, tmp_path):
        # Fresh strays may be a live writer's in-flight commit: gc and
        # purge must not touch them (deleting a temp file mid-commit
        # would crash the writer's os.replace).
        store, _ = self._filled(tmp_path, count=1)
        inflight_tmp = tmp_path / "deadbeef.npz.tmp-123-abc"
        inflight_tmp.write_bytes(b"partial")
        inflight_payload = tmp_path / "deadbeef.npz"
        inflight_payload.write_bytes(b"committed, manifest pending")
        store.gc()
        store.purge()
        assert inflight_tmp.exists()
        assert inflight_payload.exists()

    def test_cleanup_sweeps_abandoned_uncommitted_files(self, tmp_path):
        store, _ = self._filled(tmp_path, count=1)
        stray_tmp = tmp_path / "deadbeef.npz.tmp-123-abc"
        stray_tmp.write_bytes(b"partial")
        orphan_payload = tmp_path / "deadbeef.npz"
        orphan_payload.write_bytes(b"writer died before the manifest")
        long_ago = (1_000_000, 1_000_000)
        os.utime(stray_tmp, long_ago)
        os.utime(orphan_payload, long_ago)
        store.gc()
        assert not stray_tmp.exists()
        assert not orphan_payload.exists()
        assert len(store.entries()) == 1  # committed entry untouched

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("512", 512),
            ("2K", 2048),
            ("1.5M", int(1.5 * 1024**2)),
            ("2G", 2 * 1024**3),
            ("100B", 100),
            (1024, 1024),
            (None, None),
        ],
    )
    def test_parse_size_budget(self, text, expected):
        assert parse_size_budget(text) == expected

    def test_parse_size_budget_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_size_budget("lots")

    @pytest.mark.parametrize("budget", ["-500M", -1])
    def test_parse_size_budget_rejects_negative(self, budget):
        # A negative budget would silently evict everything — reject
        # it on the string path and the int path alike.
        with pytest.raises(ValueError):
            parse_size_budget(budget)

    def test_first_failed_save_warns_once(self, dataset, tmp_path):
        class ExplodingStore(ArtifactStore):
            def save(self, dataset_key, cache_key, value):
                raise OSError("disk full")

        cache = ArtifactCache(
            dataset, store=ExplodingStore(tmp_path), dataset_key=DATASET_KEY
        )
        with pytest.warns(RuntimeWarning, match="was not persisted"):
            cache.graph_ratio_sums("token", 1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second failure: silent
            cache.graph_common_edges("token", 1)


class TestConcurrentReaders:
    """Readers hammering ``load`` during concurrent ``gc`` cycles.

    The serving layer reads the store from request threads while a gc
    may run in another process.  The store's "uncommit first"
    discipline (``_remove`` unlinks the manifest before the payload)
    means a racing reader sees a clean miss, never a torn entry — so
    no amount of load/gc interleaving may ever create a quarantine
    entry, and every load that *does* succeed must return the exact
    committed payload.
    """

    N_ENTRIES = 6
    N_READERS = 4
    GC_CYCLES = 40

    def _payload(self, index: int) -> np.ndarray:
        rng = np.random.default_rng(1000 + index)
        return rng.standard_normal(256)

    def test_loads_during_gc_never_quarantine(self, tmp_path):
        import threading

        store = ArtifactStore(tmp_path)
        keys = []
        expected = {}
        for index in range(self.N_ENTRIES):
            cache_key = ("graph_ratio", "token", index)
            payload = self._payload(index)
            store.save(DATASET_KEY, cache_key, payload)
            keys.append(cache_key)
            expected[cache_key] = payload
        per_entry = store.entries()[0].nbytes

        stop = threading.Event()
        errors: list[str] = []
        hits = [0] * self.N_READERS
        misses = [0] * self.N_READERS

        def reader(slot: int) -> None:
            # Each reader gets its own store handle on the same root,
            # like concurrent worker processes would.
            local = ArtifactStore(tmp_path)
            while not stop.is_set():
                for cache_key in keys:
                    value = local.load(DATASET_KEY, cache_key)
                    if value is None:
                        misses[slot] += 1
                    elif np.array_equal(value, expected[cache_key]):
                        hits[slot] += 1
                    else:
                        errors.append(f"torn payload for {cache_key}")
                        return

        threads = [
            threading.Thread(target=reader, args=(slot,))
            for slot in range(self.N_READERS)
        ]
        for thread in threads:
            thread.start()
        try:
            # Churn: evict down to half the entries, then restore the
            # victims, so readers keep racing removals and rewrites.
            for _ in range(self.GC_CYCLES):
                store.gc(per_entry * (self.N_ENTRIES // 2))
                for cache_key in keys:
                    store.save(
                        DATASET_KEY, cache_key, expected[cache_key]
                    )
        finally:
            stop.set()
            for thread in threads:
                thread.join()

        assert not errors, errors
        # Misses are expected (reader raced an eviction); corruption
        # and quarantines are not.
        assert store.quarantined() == []
        assert store.quarantine_counts() == (0, 0)
        assert sum(hits) > 0
        for cache_key in keys:
            final = store.load(DATASET_KEY, cache_key)
            assert final is not None
            assert np.array_equal(final, expected[cache_key])


def _tier_snapshot(root):
    """Full content+mtime fingerprint of a store directory."""
    return {
        path.name: (path.stat().st_mtime_ns, path.read_bytes())
        for path in sorted(root.iterdir())
    }


class TestReadOnlyTier:
    """The shared read-only tier: hits never write upward (or anywhere)."""

    CACHE_KEY = ("graph_ratio", "token", 1)

    def _seeded_tier(self, tmp_path):
        tier_root = tmp_path / "tier"
        ArtifactStore(tier_root).save(
            DATASET_KEY, self.CACHE_KEY, np.arange(5.0)
        )
        return tier_root

    def test_tier_hit_serves_local_miss(self, tmp_path):
        tier_root = self._seeded_tier(tmp_path)
        local = ArtifactStore(tmp_path / "local", read_tier=tier_root)
        value = local.load(DATASET_KEY, self.CACHE_KEY)
        assert np.array_equal(value, np.arange(5.0))

    def test_tier_hit_never_writes_upward(self, tmp_path):
        tier_root = self._seeded_tier(tmp_path)
        before = _tier_snapshot(tier_root)
        local_root = tmp_path / "local"
        local = ArtifactStore(local_root, read_tier=tier_root)
        for _ in range(3):
            assert local.load(DATASET_KEY, self.CACHE_KEY) is not None
        # No recency utime, no rewrite, no deletion in the tier ...
        assert _tier_snapshot(tier_root) == before
        # ... and no copy downward either: the local root stays empty
        # (the in-memory ArtifactCache absorbs repeat reads).
        assert not local_root.exists() or list(local_root.iterdir()) == []

    def test_local_entry_shadows_the_tier(self, tmp_path):
        tier_root = self._seeded_tier(tmp_path)
        local = ArtifactStore(tmp_path / "local", read_tier=tier_root)
        assert local.save(DATASET_KEY, self.CACHE_KEY, np.zeros(5)) is True
        assert np.array_equal(
            local.load(DATASET_KEY, self.CACHE_KEY), np.zeros(5)
        )

    def test_stale_tier_entry_is_a_miss_and_survives(self, tmp_path):
        tier_root = self._seeded_tier(tmp_path)
        manifest_path = next(tier_root.glob("*.json"))
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        before = _tier_snapshot(tier_root)
        local = ArtifactStore(tmp_path / "local", read_tier=tier_root)
        assert local.load(DATASET_KEY, self.CACHE_KEY) is None
        assert _tier_snapshot(tier_root) == before

    def test_corrupt_tier_payload_is_a_miss_and_survives(self, tmp_path):
        tier_root = self._seeded_tier(tmp_path)
        next(tier_root.glob("*.npz")).write_bytes(b"garbage")
        before = _tier_snapshot(tier_root)
        local = ArtifactStore(tmp_path / "local", read_tier=tier_root)
        assert local.load(DATASET_KEY, self.CACHE_KEY) is None
        assert _tier_snapshot(tier_root) == before

    def test_corpus_from_tier_matches_storeless(self, tmp_path):
        tier_root = tmp_path / "tier"
        generate_corpus(CONFIG, artifact_store=tier_root)  # seed the tier
        before = _tier_snapshot(tier_root)
        storeless = generate_corpus(CONFIG)
        layered = generate_corpus(
            CONFIG,
            artifact_store=tmp_path / "local",
            store_read_tier=tier_root,
        )
        _assert_same_corpus(storeless, layered)
        assert _tier_snapshot(tier_root) == before

    def test_tier_does_not_change_cache_key(self):
        config = dataclasses.replace(
            CONFIG, artifact_store="/tmp/a", store_read_tier="/tmp/b"
        )
        assert config.cache_key() == CONFIG.cache_key()
