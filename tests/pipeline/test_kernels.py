"""Differential tests of the pairwise-kernel engine.

The kernel path (:func:`schema_based_matrix`, batched RWMD) must be
**bit-identical** — ``np.array_equal``, not approximately equal — to
the frozen ``*_legacy`` bodies over adversarial inputs, and invariant
under the block scheduler's thread count.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embeddings import FastTextLikeModel
from repro.embeddings.measures import (
    word_mover_similarity_matrix,
    word_mover_similarity_matrix_legacy,
)
from repro.embeddings.wmd import token_stats
from repro.pipeline.batched_strings import (
    StringBatch,
    schema_based_matrix,
    schema_based_matrix_legacy,
)
from repro.pipeline.kernels import (
    UniquePlan,
    get_kernel_threads,
    kernel_threads,
    row_blocks,
    run_blocks,
)
from repro.textsim.registry import SCHEMA_BASED_MEASURES

# Adversarial value lists: empty strings, unicode (combining marks,
# CJK, astral-plane emoji), single characters, heavily duplicated
# values, and all-identical columns.
ADVERSARIAL_CASES = [
    (["abc", "abd", "", "abc", "x"], ["abd", "abc", "zzz", "", "abd"]),
    (
        ["héllo wörld", "naïve café", "日本語 テスト", "a", "🙂 emoji test"],
        ["naive cafe", "héllo wörld", "日本語", "🙂 emoji test", "b"],
    ),
    (
        ["dup val"] * 6 + ["other thing"],
        ["dup val"] * 5 + ["another", "dup val"],
    ),
    (["same col"] * 4, ["same col"] * 3),
    (["a"], ["b", "ab", "ba", "a", ""]),
    ([""], [""]),
    (
        ["golden dragon restaurant", "gold dragon", "dragon inn cafe"],
        ["golden dragon restaurant llc", "dragon inn", "golden dragoon"],
    ),
]

strings = st.lists(
    st.text(alphabet="abcde _", min_size=0, max_size=12),
    min_size=1,
    max_size=6,
)


class TestUniquePlan:
    def test_first_occurrence_order(self):
        plan = UniquePlan.build(["b", "a", "b", "c", "a"], ["x", "x", "y"])
        assert plan.lefts == ("b", "a", "c")
        assert plan.rights == ("x", "y")
        assert list(plan.left_inverse) == [0, 1, 0, 2, 1]
        assert list(plan.left_index) == [0, 1, 3]
        assert list(plan.right_index) == [0, 2]

    def test_expand_roundtrip(self):
        lefts = ["a", "b", "a", "c"]
        rights = ["x", "y", "x"]
        plan = UniquePlan.build(lefts, rights)
        unique = np.arange(plan.unique_shape[0] * plan.unique_shape[1])
        unique = unique.reshape(plan.unique_shape).astype(float)
        full = plan.expand(unique)
        for i, left in enumerate(lefts):
            for j, right in enumerate(rights):
                u = plan.lefts.index(left)
                v = plan.rights.index(right)
                assert full[i, j] == unique[u, v]

    def test_dedup_ratio(self):
        plan = UniquePlan.build(["a"] * 10, ["b"] * 5)
        assert plan.unique_shape == (1, 1)
        assert plan.dedup_ratio == pytest.approx(1 / 50)

    def test_empty_sides(self):
        plan = UniquePlan.build([], ["x"])
        assert plan.shape == (0, 1)
        assert plan.expand(np.zeros(plan.unique_shape)).shape == (0, 1)


class TestBlockScheduler:
    def test_blocks_cover_rows_exactly_once(self):
        for n_rows, weight in ((1, 1), (7, 100), (1000, 5000), (3, 10**9)):
            blocks = row_blocks(n_rows, weight, threads=3)
            covered = [r for start, stop in blocks for r in range(start, stop)]
            assert covered == list(range(n_rows))

    def test_no_rows_no_blocks(self):
        assert row_blocks(0, 10) == []

    def test_run_blocks_deterministic_assembly(self):
        out = np.zeros(100)

        def kernel(start, stop):
            out[start:stop] = np.arange(start, stop)

        run_blocks(row_blocks(100, 10**6, threads=4), kernel, threads=4)
        assert np.array_equal(out, np.arange(100.0))

    def test_run_blocks_propagates_errors(self):
        def kernel(start, stop):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            run_blocks([(0, 1), (1, 2)], kernel, threads=2)

    def test_kernel_threads_scope(self):
        assert get_kernel_threads() == 1
        with kernel_threads(4):
            assert get_kernel_threads() == 4
            with kernel_threads(2):
                assert get_kernel_threads() == 2
            assert get_kernel_threads() == 4
        assert get_kernel_threads() == 1


class TestSchemaBasedDifferential:
    @pytest.mark.parametrize("measure", SCHEMA_BASED_MEASURES)
    @pytest.mark.parametrize(
        "case", range(len(ADVERSARIAL_CASES)), ids=lambda i: f"case{i}"
    )
    def test_bit_identical_to_legacy(self, measure, case):
        lefts, rights = ADVERSARIAL_CASES[case]
        new = schema_based_matrix(
            lefts, rights, measure, StringBatch(lefts, rights)
        )
        legacy = schema_based_matrix_legacy(
            lefts, rights, measure, StringBatch(lefts, rights)
        )
        assert np.array_equal(new, legacy), measure

    @pytest.mark.parametrize("measure", SCHEMA_BASED_MEASURES)
    @given(lefts=strings, rights=strings)
    @settings(max_examples=15, deadline=None)
    def test_bit_identical_on_random_inputs(self, measure, lefts, rights):
        new = schema_based_matrix(lefts, rights, measure)
        legacy = schema_based_matrix_legacy(lefts, rights, measure)
        assert np.array_equal(new, legacy)

    @pytest.mark.parametrize("measure", SCHEMA_BASED_MEASURES)
    def test_workers_invariance(self, measure):
        lefts, rights = ADVERSARIAL_CASES[1]
        serial = schema_based_matrix(lefts, rights, measure)
        with kernel_threads(3):
            threaded = schema_based_matrix(lefts, rights, measure)
        assert np.array_equal(serial, threaded), measure

    def test_shared_batch_matches_fresh(self):
        lefts, rights = ADVERSARIAL_CASES[6]
        batch = StringBatch(lefts, rights)
        for measure in SCHEMA_BASED_MEASURES:
            fresh = schema_based_matrix(lefts, rights, measure)
            shared = schema_based_matrix(lefts, rights, measure, batch)
            assert np.array_equal(fresh, shared), measure


class TestRwmdDifferential:
    @pytest.fixture(scope="class")
    def embeddings(self):
        model = FastTextLikeModel(dim=24)
        texts_left = [
            "red fox", "", "blue whale swimming", "red fox", "###",
            "one", "several common tokens in a longer text here",
        ] * 2
        texts_right = [
            "red fox", "blue whale", "", "###",
            "quick brown fox", "one token",
        ] * 2
        left = [model.embed_tokens(t) for t in texts_left]
        right = [model.embed_tokens(t) for t in texts_right]
        return texts_left, texts_right, left, right

    def test_bit_identical_without_stats(self, embeddings):
        _, _, left, right = embeddings
        new = word_mover_similarity_matrix(left, right)
        legacy = word_mover_similarity_matrix_legacy(left, right)
        assert np.array_equal(new, legacy)

    def test_bit_identical_with_stats(self, embeddings):
        _, _, left, right = embeddings
        stats_left = [token_stats(m) for m in left]
        stats_right = [token_stats(m) for m in right]
        new = word_mover_similarity_matrix(
            left, right, stats_left=stats_left, stats_right=stats_right
        )
        legacy = word_mover_similarity_matrix_legacy(
            left, right, stats_left=stats_left, stats_right=stats_right
        )
        assert np.array_equal(new, legacy)

    def test_tokenless_conventions(self):
        empty = np.empty((0, 8))
        some = np.ones((2, 8))
        matrix = word_mover_similarity_matrix([empty, some], [empty, some])
        assert matrix[0, 0] == 1.0  # both token-less: zero cost
        assert matrix[0, 1] == 0.0  # exactly one side token-less
        assert matrix[1, 0] == 0.0
        assert matrix[1, 1] == 1.0  # identical texts

    def test_deduplicated_semantic_path(self, embeddings):
        from repro.pipeline.similarity_functions import (
            semantic_matrix_from_embeddings,
        )

        texts_left, texts_right, left, right = embeddings
        result = semantic_matrix_from_embeddings(
            texts_left, texts_right, "wmd", left, right
        )
        reference = word_mover_similarity_matrix_legacy(left, right)
        left_empty = np.array([not t for t in texts_left], dtype=bool)
        right_empty = np.array([not t for t in texts_right], dtype=bool)
        reference[left_empty, :] = 0.0
        reference[:, right_empty] = 0.0
        assert np.array_equal(result, reference)


class TestEngineThreadInvariance:
    def test_engine_threads_do_not_change_matrices(self):
        from repro.datasets.catalog import dataset_spec
        from repro.datasets.generator import generate_dataset
        from repro.pipeline import SimilarityEngine, enumerate_functions

        dataset = generate_dataset(
            dataset_spec("d1", scale=0.04, max_pairs=2_000), seed=11
        )
        specs = [
            spec
            for spec in enumerate_functions(
                dataset,
                families=("schema_based_syntactic",),
                max_attributes=1,
            )
        ]
        serial = SimilarityEngine(dataset, threads=1)
        threaded = SimilarityEngine(dataset, threads=3)
        for spec in specs:
            assert np.array_equal(
                serial.compute(spec), threaded.compute(spec)
            ), spec.name


class TestPairwiseMinSumThreading:
    """The CSC column sweep threaded through the block scheduler."""

    def _matrices(self, seed=11):
        from scipy import sparse

        rng = np.random.default_rng(seed)
        left = sparse.random(
            83, 47, density=0.18, random_state=rng, format="csr"
        )
        right = sparse.random(
            61, 47, density=0.22, random_state=rng, format="csr"
        )
        return left, right

    def _reference(self, left, right):
        """The pre-engine single-pass column sweep, verbatim."""
        result = np.zeros((left.shape[0], right.shape[0]))
        left_csc, right_csc = left.tocsc(), right.tocsc()
        for col in range(left.shape[1]):
            a_start, a_end = left_csc.indptr[col], left_csc.indptr[col + 1]
            if a_start == a_end:
                continue
            b_start, b_end = (
                right_csc.indptr[col], right_csc.indptr[col + 1],
            )
            if b_start == b_end:
                continue
            result[
                np.ix_(
                    left_csc.indices[a_start:a_end],
                    right_csc.indices[b_start:b_end],
                )
            ] += np.minimum.outer(
                left_csc.data[a_start:a_end],
                right_csc.data[b_start:b_end],
            )
        return result

    def test_matches_single_pass_reference(self):
        from repro.vectorspace.measures import pairwise_min_sum

        left, right = self._matrices()
        assert np.array_equal(
            pairwise_min_sum(left, right), self._reference(left, right)
        )

    @pytest.mark.parametrize("threads", [1, 2, 3, 7])
    def test_thread_invariance(self, threads):
        from repro.vectorspace.measures import pairwise_min_sum

        left, right = self._matrices()
        reference = self._reference(left, right)
        assert np.array_equal(
            pairwise_min_sum(left, right, threads=threads), reference
        )
        with kernel_threads(threads):
            assert np.array_equal(
                pairwise_min_sum(left, right), reference
            )

    def test_generalized_jaccard_thread_invariant(self):
        from repro.vectorspace import build_vector_models
        from repro.vectorspace.measures import generalized_jaccard_matrix

        texts_left = [f"alpha beta gamma {i % 7}" for i in range(40)]
        texts_right = [f"beta delta {i % 5} gamma" for i in range(30)]
        left, right = build_vector_models(
            texts_left, texts_right, n=1, unit="token", weighting="tf"
        )
        serial = generalized_jaccard_matrix(left, right)
        with kernel_threads(4):
            threaded = generalized_jaccard_matrix(left, right)
        assert np.array_equal(serial, threaded)
