"""Differential tests: batched all-pairs measures vs scalar references.

Every batched matrix function must agree with the trusted scalar
implementation from :mod:`repro.textsim` on all pairs of non-empty
strings (empty strings follow the builder convention of similarity 0,
checked separately).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.batched_strings import (
    TOKEN_MATRIX_MEASURES,
    damerau_levenshtein_matrix,
    jaro_matrix,
    lcs_subsequence_matrix,
    lcs_substring_matrix,
    levenshtein_matrix,
    monge_elkan_matrix,
    needleman_wunsch_matrix,
    qgrams_matrix,
    schema_based_matrix,
    token_measure_matrix,
)
from repro.textsim import (
    damerau_levenshtein_similarity,
    jaro_similarity,
    levenshtein_similarity,
    longest_common_subsequence_similarity,
    longest_common_substring_similarity,
    monge_elkan_similarity,
    needleman_wunsch_similarity,
    qgrams_distance_similarity,
)
from repro.textsim.registry import TOKEN_MEASURES

BATCHED_VS_SCALAR = [
    (levenshtein_matrix, levenshtein_similarity),
    (damerau_levenshtein_matrix, damerau_levenshtein_similarity),
    (needleman_wunsch_matrix, needleman_wunsch_similarity),
    (lcs_subsequence_matrix, longest_common_subsequence_similarity),
    (lcs_substring_matrix, longest_common_substring_similarity),
    (jaro_matrix, jaro_similarity),
    (qgrams_matrix, qgrams_distance_similarity),
    (monge_elkan_matrix, monge_elkan_similarity),
]

strings = st.lists(
    st.text(alphabet="abcde _", min_size=1, max_size=12).filter(str.strip),
    min_size=1,
    max_size=6,
)


@pytest.mark.parametrize("batched,scalar", BATCHED_VS_SCALAR)
@given(lefts=strings, rights=strings)
@settings(max_examples=30, deadline=None)
def test_batched_matches_scalar(batched, scalar, lefts, rights):
    from repro.textsim.tokenize import tokens

    matrix = batched(lefts, rights)
    assert matrix.shape == (len(lefts), len(rights))
    for i, a in enumerate(lefts):
        for j, b in enumerate(rights):
            if batched is monge_elkan_matrix and (
                not tokens(a) or not tokens(b)
            ):
                assert matrix[i, j] == 0.0  # builder convention
                continue
            assert matrix[i, j] == pytest.approx(scalar(a, b), abs=1e-9), (
                f"{batched.__name__} mismatch for {a!r} vs {b!r}"
            )


@pytest.mark.parametrize("measure", TOKEN_MATRIX_MEASURES)
@given(lefts=strings, rights=strings)
@settings(max_examples=30, deadline=None)
def test_token_matrix_matches_scalar(measure, lefts, rights):
    from repro.textsim.tokenize import tokens

    scalar = TOKEN_MEASURES[measure]
    matrix = token_measure_matrix(lefts, rights, measure)
    for i, a in enumerate(lefts):
        for j, b in enumerate(rights):
            if not tokens(a) or not tokens(b):
                # Builder convention: values without tokens carry no
                # matching evidence (the scalar measures instead treat
                # two token-less values as identical).
                assert matrix[i, j] == 0.0
                continue
            assert matrix[i, j] == pytest.approx(scalar(a, b), abs=1e-9), (
                f"{measure} mismatch for {a!r} vs {b!r}"
            )


@pytest.mark.parametrize("batched,_", BATCHED_VS_SCALAR)
def test_empty_strings_yield_zero(batched, _):
    matrix = batched(["", "abc"], ["abc", ""])
    assert matrix[0, 0] == 0.0  # empty left
    assert matrix[1, 1] == 0.0  # empty right
    assert matrix[0, 1] == 0.0  # both empty: still no evidence


def test_empty_collections():
    assert levenshtein_matrix([], ["a"]).shape == (0, 1)
    assert levenshtein_matrix(["a"], []).shape == (1, 0)
    assert token_measure_matrix([], [], "dice").shape == (0, 0)


def test_schema_based_matrix_dispatch():
    lefts, rights = ["abc"], ["abd"]
    direct = levenshtein_matrix(lefts, rights)
    dispatched = schema_based_matrix(lefts, rights, "levenshtein")
    assert np.allclose(direct, dispatched)
    token = schema_based_matrix(["a b"], ["b c"], "jaccard")
    assert token[0, 0] == pytest.approx(1 / 3)


def test_schema_based_matrix_unknown_measure():
    with pytest.raises(KeyError):
        schema_based_matrix(["a"], ["b"], "soundex")


def test_all_sixteen_measures_dispatchable():
    from repro.textsim.registry import SCHEMA_BASED_MEASURES

    for measure in SCHEMA_BASED_MEASURES:
        matrix = schema_based_matrix(["golden dragon"], ["golden dragoon"],
                                     measure)
        assert matrix.shape == (1, 1)
        assert 0.0 <= matrix[0, 0] <= 1.0
