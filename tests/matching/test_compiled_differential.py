"""Differential tests: compiled kernels vs frozen legacy implementations.

For every registered algorithm code, `match` (the compiled path) must
return exactly the same pairs as `match_legacy` (the pre-refactor
implementation, kept verbatim) across the full paper threshold grid on
a battery of adversarial graphs: random, duplicate-parallel-edge,
all-ties, empty-edge, degenerate shapes.  The same guarantee is
checked one level up for the sweep engine and for the process-parallel
experiment driver.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.metrics import evaluate_pairs
from repro.evaluation.sweep import DEFAULT_THRESHOLD_GRID, threshold_sweep
from repro.graph import SimilarityGraph
from repro.matching import ALGORITHM_CODES, create_matcher


def make_matcher(code):
    if code == "BAH":
        # Small move budget, generous time limit: deterministic runs.
        return create_matcher("BAH", max_moves=400, time_limit=60.0, seed=3)
    return create_matcher(code)


def _random(seed, n_left, n_right, m, decimals=2):
    rng = np.random.default_rng(seed)
    weight = np.maximum(np.round(rng.random(m), decimals), 10.0 ** -decimals)
    return SimilarityGraph(
        n_left,
        n_right,
        rng.integers(0, n_left, m),
        rng.integers(0, n_right, m),
        weight,
    )


def graph_battery():
    rng = np.random.default_rng(99)
    graphs = {
        "random_square": _random(1, 12, 12, 70),
        "random_wide": _random(2, 6, 20, 60),
        "random_tall": _random(3, 20, 6, 60),
        "fine_weights": _random(4, 10, 10, 50, decimals=3),
        "empty_edges": SimilarityGraph.from_edges(5, 4, []),
        "single_edge": SimilarityGraph.from_edges(1, 1, [(0, 0, 0.5)]),
        "all_ties": SimilarityGraph(
            8,
            8,
            rng.integers(0, 8, 40),
            rng.integers(0, 8, 40),
            np.full(40, 0.6),
        ),
        "two_tie_levels": SimilarityGraph(
            7,
            7,
            rng.integers(0, 7, 30),
            rng.integers(0, 7, 30),
            np.where(rng.random(30) < 0.5, 0.3, 0.8),
        ),
    }
    return sorted(graphs.items())


@pytest.mark.parametrize("code", ALGORITHM_CODES)
@pytest.mark.parametrize(
    "label,graph", graph_battery(), ids=[k for k, _ in graph_battery()]
)
def test_compiled_equals_legacy_over_grid(code, label, graph):
    for threshold in DEFAULT_THRESHOLD_GRID:
        legacy = make_matcher(code).match_legacy(graph, threshold)
        compiled = make_matcher(code).match(graph, threshold)
        assert legacy.pairs == compiled.pairs, (
            f"{code} diverges on {label} at t={threshold}"
        )
        assert compiled.algorithm == code
        assert compiled.threshold == threshold


@pytest.mark.parametrize("code", ALGORITHM_CODES)
def test_compiled_cache_reuse_across_thresholds(code):
    """One matcher instance over one shared compiled graph, descending
    and ascending through the grid: cached selections and kernel state
    must not leak between thresholds."""
    graph = _random(31, 15, 13, 90)
    matcher = make_matcher(code)
    grid = list(DEFAULT_THRESHOLD_GRID) + list(DEFAULT_THRESHOLD_GRID)[::-1]
    for threshold in grid:
        expected = make_matcher(code).match_legacy(graph, threshold)
        assert matcher.match(graph, threshold).pairs == expected.pairs


def test_sweep_engine_equals_legacy_sweep():
    """threshold_sweep (compiled engine + truth index) must reproduce a
    hand-rolled legacy sweep point for point."""
    graph = _random(41, 14, 14, 80)
    truth = {(i, i) for i in range(10)}
    for code in ALGORITHM_CODES:
        sweep = threshold_sweep(make_matcher(code), graph, truth)
        assert [p.threshold for p in sweep.points] == list(
            DEFAULT_THRESHOLD_GRID
        )
        for point in sweep.points:
            matching = make_matcher(code).match_legacy(
                graph, point.threshold
            )
            assert point.scores == evaluate_pairs(matching.pairs, truth)
