"""Property-based invariants that every matching algorithm must satisfy.

These correspond to the CCER problem definition of Section 2: every
output pair is an actual edge of the graph above (or at) the threshold,
each entity is matched at most once, the input graph is never mutated,
and runs are deterministic.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.matching import create_matcher
from tests.conftest import (
    assert_unchanged,
    assert_valid_result,
    graph_signature,
    similarity_graphs,
    thresholds_strategy,
)

# CNC and RCA keep pairs with weight >= t (per their pseudocode); the
# remaining algorithms use a strict comparison.
INCLUSIVE_THRESHOLD = {"CNC", "RCA"}

ALL_CODES = ["CNC", "RSR", "RCA", "BAH", "BMC", "EXC", "KRC", "UMC", "HUN", "GSM"]


def make(code):
    if code == "BAH":
        return create_matcher(code, max_moves=500, time_limit=5.0, seed=7)
    return create_matcher(code)


@pytest.mark.parametrize("code", ALL_CODES)
@given(graph=similarity_graphs(), threshold=thresholds_strategy())
@settings(max_examples=60, deadline=None)
def test_result_is_valid_matching(code, graph, threshold):
    matcher = make(code)
    result = matcher.match(graph, threshold)
    assert_valid_result(
        result, graph, threshold, inclusive=code in INCLUSIVE_THRESHOLD
    )


@pytest.mark.parametrize("code", ALL_CODES)
@given(graph=similarity_graphs(), threshold=thresholds_strategy())
@settings(max_examples=30, deadline=None)
def test_graph_not_mutated(code, graph, threshold):
    matcher = make(code)
    signature = graph_signature(graph)
    matcher.match(graph, threshold)
    assert_unchanged(graph, signature)


@pytest.mark.parametrize("code", ALL_CODES)
@given(graph=similarity_graphs(), threshold=thresholds_strategy())
@settings(max_examples=30, deadline=None)
def test_deterministic(code, graph, threshold):
    first = make(code).match(graph, threshold)
    second = make(code).match(graph, threshold)
    assert first.pairs == second.pairs


@pytest.mark.parametrize("code", ALL_CODES)
def test_empty_graph_yields_empty_result(code, empty_graph):
    result = make(code).match(empty_graph, 0.5)
    assert result.pairs == []
    assert result.algorithm == code


@pytest.mark.parametrize("code", ALL_CODES)
def test_threshold_above_all_weights_yields_empty(code, fig1):
    result = make(code).match(fig1, 0.95)
    assert result.pairs == []


@pytest.mark.parametrize("code", ALL_CODES)
def test_perfect_graph_recovered(code, perfect_graph):
    """Every algorithm must solve the unambiguous diagonal instance."""
    result = make(code).match(perfect_graph, 0.5)
    assert sorted(result.pairs) == [(0, 0), (1, 1), (2, 2)]


@pytest.mark.parametrize("code", ALL_CODES)
@given(graph=similarity_graphs())
@settings(max_examples=30, deadline=None)
def test_result_metadata(code, graph):
    result = make(code).match(graph, 0.3005)
    assert result.algorithm == code
    assert result.threshold == 0.3005


@given(graph=similarity_graphs(), threshold=thresholds_strategy())
@settings(max_examples=60, deadline=None)
def test_hungarian_dominates_heuristics(graph, threshold):
    """The exact oracle's matching weight bounds every heuristic's.

    Weights are compared on the strictly-pruned graph, which is what
    every algorithm except CNC/RCA optimises over; for those two the
    inclusive pruning can only add weight-equal edges, so the bound
    still holds for the strict-weight accounting used here.
    """
    pruned = graph.prune(threshold)
    optimal = create_matcher("HUN").match(graph, threshold)
    best = optimal.total_weight(pruned)
    for code in ["UMC", "KRC", "EXC", "BMC", "GSM"]:
        heuristic = create_matcher(code).match(graph, threshold)
        assert heuristic.total_weight(pruned) <= best + 1e-9


@given(graph=similarity_graphs(), threshold=thresholds_strategy())
@settings(max_examples=60, deadline=None)
def test_umc_is_half_approximation(graph, threshold):
    """Greedy matching is a 1/2-approximation of maximum weight."""
    pruned = graph.prune(threshold)
    optimal = create_matcher("HUN").match(graph, threshold)
    greedy = create_matcher("UMC").match(graph, threshold)
    assert greedy.total_weight(pruned) >= 0.5 * optimal.total_weight(pruned) - 1e-9


@given(graph=similarity_graphs(), threshold=thresholds_strategy())
@settings(max_examples=60, deadline=None)
def test_exc_pairs_are_mutual_best(graph, threshold):
    """EXC's defining property, checked against raw adjacency."""
    result = create_matcher("EXC").match(graph, threshold)
    left_adj = graph.left_adjacency()
    right_adj = graph.right_adjacency()
    for i, j in result.pairs:
        assert left_adj[i][0][0] == j
        assert right_adj[j][0][0] == i


@pytest.mark.parametrize("code", ["KRC", "GSM"])
@given(graph=similarity_graphs(), threshold=thresholds_strategy())
@settings(max_examples=60, deadline=None)
def test_stable_marriage_weak_stability(code, graph, threshold):
    """No blocking pair: an edge strictly heavier than both endpoints'
    current engagements would contradict deferred acceptance."""
    result = create_matcher(code).match(graph, threshold)
    left_engaged = {i: j for i, j in result.pairs}
    right_engaged = {j: i for i, j in result.pairs}
    weight = {}
    for i, j, w in graph.edges():
        weight[(i, j)] = max(weight.get((i, j), 0.0), w)

    def engagement_weight(node, side):
        if side == "left":
            partner = left_engaged.get(node)
            return weight[(node, partner)] if partner is not None else -1.0
        partner = right_engaged.get(node)
        return weight[(partner, node)] if partner is not None else -1.0

    for (i, j), w in weight.items():
        if w <= threshold:
            continue
        blocking = (
            w > engagement_weight(i, "left")
            and w > engagement_weight(j, "right")
        )
        assert not blocking, f"blocking pair {(i, j)} with weight {w}"
