"""Replays the paper's Figure 1 walk-through (threshold 0.5).

Figure 1(b): CNC keeps only the valid 2-node partitions (A2,B2), (A3,B4).
Figure 1(c): weight-maximizing algorithms pair A1-B1 and A5-B3, whose
             sum 0.6+0.6 beats the single 0.9 edge A5-B1.
Figure 1(d): the greedy family (UMC, EXC, BMC with basis V2, and in this
             instance also KRC) pairs A5-B1, A2-B2, A3-B4.
"""

from __future__ import annotations

import pytest

from repro.matching import (
    BestAssignmentHeuristic,
    BestMatchClustering,
    ConnectedComponentsClustering,
    ExactClustering,
    HungarianMatching,
    KiralyClustering,
    UniqueMappingClustering,
)

T = 0.5

FIGURE_1B = [(1, 1), (2, 3)]
FIGURE_1C = [(0, 0), (1, 1), (2, 3), (4, 2)]
FIGURE_1D = [(1, 1), (2, 3), (4, 0)]


def test_cnc_figure_1b(fig1):
    result = ConnectedComponentsClustering().match(fig1, T)
    assert sorted(result.pairs) == FIGURE_1B


def test_umc_figure_1d(fig1):
    result = UniqueMappingClustering().match(fig1, T)
    assert sorted(result.pairs) == FIGURE_1D


def test_exc_figure_1d(fig1):
    result = ExactClustering().match(fig1, T)
    assert sorted(result.pairs) == FIGURE_1D


def test_bmc_basis_right_figure_1d(fig1):
    """The paper: BMC yields Figure 1(d) with V2 (blue) as basis."""
    result = BestMatchClustering(basis="right").match(fig1, T)
    assert sorted(result.pairs) == FIGURE_1D


def test_krc_figure_1d(fig1):
    result = KiralyClustering().match(fig1, T)
    assert sorted(result.pairs) == FIGURE_1D


def test_hungarian_finds_optimal_figure_1c(fig1):
    result = HungarianMatching().match(fig1, T)
    assert sorted(result.pairs) == FIGURE_1C
    assert result.total_weight(fig1) == pytest.approx(2.5)


def test_bah_reaches_optimal_figure_1c(fig1):
    """With enough moves, BAH finds the maximum-weight solution."""
    result = BestAssignmentHeuristic(
        max_moves=5000, time_limit=10.0, seed=3
    ).match(fig1, T)
    assert sorted(result.pairs) == FIGURE_1C
    assert result.total_weight(fig1) == pytest.approx(2.5)


def test_figure_1d_weight_is_suboptimal(fig1):
    """The greedy outcome weighs 2.2 < 2.5, as the paper discusses."""
    result = UniqueMappingClustering().match(fig1, T)
    assert result.total_weight(fig1) == pytest.approx(2.2)
