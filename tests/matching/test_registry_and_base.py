"""Tests for the algorithm registry and the MatchingResult container."""

from __future__ import annotations

import pytest

from repro.graph import SimilarityGraph
from repro.matching import (
    ALGORITHM_CODES,
    PAPER_ALGORITHM_CODES,
    MatchingResult,
    create_matcher,
    default_matchers,
    paper_matchers,
)
from repro.matching.base import Matcher


class TestRegistry:
    def test_paper_codes_are_the_eight(self):
        assert PAPER_ALGORITHM_CODES == (
            "CNC", "RSR", "RCA", "BAH", "BMC", "EXC", "KRC", "UMC",
        )

    def test_all_codes_include_oracles(self):
        assert set(PAPER_ALGORITHM_CODES) <= set(ALGORITHM_CODES)
        assert "HUN" in ALGORITHM_CODES
        assert "GSM" in ALGORITHM_CODES

    def test_create_matcher_case_insensitive(self):
        assert create_matcher("umc").code == "UMC"

    def test_create_matcher_unknown(self):
        with pytest.raises(KeyError):
            create_matcher("XYZ")

    def test_create_matcher_forwards_kwargs(self):
        bah = create_matcher("BAH", max_moves=5, time_limit=1.0, seed=9)
        assert bah.max_moves == 5
        assert bah.time_limit == 1.0
        assert bah.seed == 9

    def test_paper_matchers_complete(self):
        matchers = paper_matchers()
        assert tuple(matchers) == PAPER_ALGORITHM_CODES
        for code, matcher in matchers.items():
            assert isinstance(matcher, Matcher)
            assert matcher.code == code

    def test_paper_matchers_bah_budgets(self):
        matchers = paper_matchers(bah_max_moves=10, bah_time_limit=0.5)
        assert matchers["BAH"].max_moves == 10
        assert matchers["BAH"].time_limit == 0.5

    def test_default_matchers_cover_registry(self):
        assert set(default_matchers()) == set(ALGORITHM_CODES)

    def test_every_matcher_has_metadata(self):
        for code, matcher in default_matchers().items():
            assert matcher.code == code
            assert matcher.full_name


class TestMatchingResult:
    def test_pair_set_and_sides(self):
        result = MatchingResult(pairs=[(0, 1), (2, 0)], algorithm="UMC")
        assert result.pair_set() == {(0, 1), (2, 0)}
        assert result.matched_left() == {0, 2}
        assert result.matched_right() == {0, 1}
        assert len(result) == 2

    def test_total_weight(self):
        g = SimilarityGraph.from_edges(2, 2, [(0, 0, 0.5), (1, 1, 0.25)])
        result = MatchingResult(pairs=[(0, 0), (1, 1)])
        assert result.total_weight(g) == pytest.approx(0.75)

    def test_total_weight_missing_edge_counts_zero(self):
        g = SimilarityGraph.from_edges(2, 2, [(0, 0, 0.5)])
        result = MatchingResult(pairs=[(0, 0), (1, 1)])
        assert result.total_weight(g) == pytest.approx(0.5)

    def test_validate_catches_duplicate_left(self):
        result = MatchingResult(pairs=[(0, 0), (0, 1)])
        with pytest.raises(ValueError):
            result.validate()

    def test_validate_catches_duplicate_right(self):
        result = MatchingResult(pairs=[(0, 1), (2, 1)])
        with pytest.raises(ValueError):
            result.validate()

    def test_validate_catches_out_of_range(self):
        g = SimilarityGraph.from_edges(1, 1, [(0, 0, 0.5)])
        with pytest.raises(ValueError):
            MatchingResult(pairs=[(5, 0)]).validate(g)
        with pytest.raises(ValueError):
            MatchingResult(pairs=[(0, 5)]).validate(g)

    def test_validate_accepts_valid(self):
        g = SimilarityGraph.from_edges(2, 2, [(0, 0, 0.5)])
        MatchingResult(pairs=[(0, 0), (1, 1)]).validate(g)
