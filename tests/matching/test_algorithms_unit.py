"""Focused unit tests for each matching algorithm's specific behaviour."""

from __future__ import annotations

import pytest

from repro.graph import SimilarityGraph
from repro.matching import (
    BestAssignmentHeuristic,
    BestMatchClustering,
    ConnectedComponentsClustering,
    ExactClustering,
    GaleShapleyMatching,
    HungarianMatching,
    KiralyClustering,
    RicochetSRClustering,
    RowColumnClustering,
    UniqueMappingClustering,
)
from repro.matching.connected_components import UnionFind


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(3)
        assert uf.find(0) != uf.find(1)

    def test_union_merges(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert uf.find(0) == uf.find(1)
        assert uf.component_size(0) == 2
        assert uf.component_size(2) == 1

    def test_union_idempotent(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        uf.union(1, 0)
        assert uf.component_size(0) == 2

    def test_transitive(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(3, 4)
        assert uf.find(0) == uf.find(2)
        assert uf.find(3) != uf.find(0)
        assert uf.component_size(2) == 3


class TestCNC:
    def test_discards_large_components(self):
        # A chain a0-b0-a1 forms a 3-node component: all discarded.
        g = SimilarityGraph.from_edges(
            2, 2, [(0, 0, 0.9), (1, 0, 0.8), (1, 1, 0.2)]
        )
        result = ConnectedComponentsClustering().match(g, 0.5)
        assert result.pairs == []

    def test_keeps_isolated_pairs(self):
        g = SimilarityGraph.from_edges(
            2, 2, [(0, 0, 0.9), (1, 1, 0.8)]
        )
        result = ConnectedComponentsClustering().match(g, 0.5)
        assert sorted(result.pairs) == [(0, 0), (1, 1)]

    def test_threshold_is_inclusive(self):
        g = SimilarityGraph.from_edges(1, 1, [(0, 0, 0.5)])
        result = ConnectedComponentsClustering().match(g, 0.5)
        assert result.pairs == [(0, 0)]

    def test_pruning_splits_components(self):
        # Below threshold the chain edge disappears, leaving one pair.
        g = SimilarityGraph.from_edges(
            2, 2, [(0, 0, 0.9), (1, 0, 0.3), (1, 1, 0.2)]
        )
        result = ConnectedComponentsClustering().match(g, 0.5)
        assert result.pairs == [(0, 0)]

    def test_duplicate_edges_still_one_pair(self):
        g = SimilarityGraph(2, 2, [0, 0], [0, 0], [0.9, 0.8])
        result = ConnectedComponentsClustering().match(g, 0.5)
        assert result.pairs == [(0, 0)]


class TestUMC:
    def test_greedy_order(self):
        # The 0.9 edge locks a0 and b0; the 0.8 edge is then blocked,
        # so b1 and a1 remain single despite their 0.6 edge being free.
        g = SimilarityGraph.from_edges(
            2, 2, [(0, 0, 0.9), (0, 1, 0.8), (1, 0, 0.7), (1, 1, 0.6)]
        )
        result = UniqueMappingClustering().match(g, 0.5)
        assert sorted(result.pairs) == [(0, 0), (1, 1)]

    def test_strict_threshold(self):
        g = SimilarityGraph.from_edges(1, 1, [(0, 0, 0.5)])
        result = UniqueMappingClustering().match(g, 0.5)
        assert result.pairs == []

    def test_tie_break_deterministic(self):
        g = SimilarityGraph.from_edges(
            2, 2, [(1, 0, 0.8), (0, 0, 0.8), (0, 1, 0.8), (1, 1, 0.8)]
        )
        result = UniqueMappingClustering().match(g, 0.5)
        assert sorted(result.pairs) == [(0, 0), (1, 1)]


class TestBMC:
    def test_basis_left(self):
        # a0's best is b0; a1's best is also b0 but it is taken: a1
        # falls back to nothing because its only other edge is below t.
        g = SimilarityGraph.from_edges(
            2, 2, [(0, 0, 0.9), (1, 0, 0.8), (1, 1, 0.3)]
        )
        result = BestMatchClustering(basis="left").match(g, 0.5)
        assert result.pairs == [(0, 0)]

    def test_basis_right(self):
        g = SimilarityGraph.from_edges(
            2, 2, [(0, 0, 0.9), (1, 0, 0.8), (1, 1, 0.3)]
        )
        result = BestMatchClustering(basis="right").match(g, 0.5)
        assert result.pairs == [(0, 0)]

    def test_basis_changes_result(self):
        # Scanning V1 first gives a0 its best b0; scanning V2 first
        # gives b0 its best a1, producing different pairs.
        g = SimilarityGraph.from_edges(
            2, 1, [(0, 0, 0.8), (1, 0, 0.9)]
        )
        left = BestMatchClustering(basis="left").match(g, 0.5)
        right = BestMatchClustering(basis="right").match(g, 0.5)
        assert left.pairs == [(0, 0)]
        assert right.pairs == [(1, 0)]

    def test_smaller_basis_resolution(self):
        g = SimilarityGraph.from_edges(2, 1, [(0, 0, 0.8), (1, 0, 0.9)])
        # V2 is smaller: basis="smaller" must behave like basis="right".
        auto = BestMatchClustering(basis="smaller").match(g, 0.5)
        right = BestMatchClustering(basis="right").match(g, 0.5)
        assert auto.pairs == right.pairs

    def test_invalid_basis_rejected(self):
        with pytest.raises(ValueError):
            BestMatchClustering(basis="bogus")


class TestEXC:
    def test_requires_reciprocity(self):
        # a0's best is b0, but b0's best is a1: no pair for a0.
        g = SimilarityGraph.from_edges(
            2, 2, [(0, 0, 0.7), (1, 0, 0.9), (1, 1, 0.8)]
        )
        result = ExactClustering().match(g, 0.5)
        # a1's best is b0 (0.9) and b0's best is a1: mutual.
        assert result.pairs == [(1, 0)]

    def test_exc_subset_of_bmc_union(self):
        g = SimilarityGraph.from_edges(
            3, 3, [(0, 0, 0.9), (0, 1, 0.8), (1, 1, 0.85), (2, 2, 0.6)]
        )
        exc = set(ExactClustering().match(g, 0.5).pairs)
        bmc_left = set(BestMatchClustering(basis="left").match(g, 0.5).pairs)
        bmc_right = set(BestMatchClustering(basis="right").match(g, 0.5).pairs)
        assert exc <= (bmc_left | bmc_right)


class TestRCA:
    def test_second_pass_can_win(self):
        # Pass over V1: a0 grabs b0 (0.8), a1 gets b1 (0.1): value 0.9.
        # Pass over V2: b0 grabs a1 (0.9), b1 gets a0 (0.7): value 1.6.
        g = SimilarityGraph.from_edges(
            2,
            2,
            [(0, 0, 0.8), (1, 0, 0.9), (0, 1, 0.7), (1, 1, 0.1)],
        )
        result = RowColumnClustering().match(g, 0.5)
        assert sorted(result.pairs) == [(0, 1), (1, 0)]

    def test_assignment_ignores_threshold_until_filter(self):
        # a0 takes b0 (0.9); a1's only free option is b1 at 0.2, which
        # the final filter drops.
        g = SimilarityGraph.from_edges(
            2, 2, [(0, 0, 0.9), (1, 0, 0.8), (1, 1, 0.2)]
        )
        result = RowColumnClustering().match(g, 0.5)
        assert result.pairs == [(0, 0)]

    def test_filter_keeps_weight_equal_to_threshold(self):
        g = SimilarityGraph.from_edges(1, 1, [(0, 0, 0.5)])
        result = RowColumnClustering().match(g, 0.5)
        assert result.pairs == [(0, 0)]


class TestBAH:
    def test_improves_over_initial_assignment(self):
        # Initial pairing is (a0,b0), (a1,b1) with tiny weights; the
        # optimum is the anti-diagonal.
        g = SimilarityGraph.from_edges(
            2,
            2,
            [(0, 0, 0.51), (1, 1, 0.52), (0, 1, 0.95), (1, 0, 0.96)],
        )
        result = BestAssignmentHeuristic(
            max_moves=1000, time_limit=5.0, seed=1
        ).match(g, 0.5)
        assert sorted(result.pairs) == [(0, 1), (1, 0)]

    def test_zero_moves_keeps_initial_assignment(self):
        g = SimilarityGraph.from_edges(2, 2, [(0, 0, 0.9), (1, 1, 0.8)])
        result = BestAssignmentHeuristic(
            max_moves=0, time_limit=5.0
        ).match(g, 0.5)
        assert sorted(result.pairs) == [(0, 0), (1, 1)]

    def test_handles_larger_right_side(self):
        g = SimilarityGraph.from_edges(
            1, 3, [(0, 0, 0.2), (0, 2, 0.9)]
        )
        result = BestAssignmentHeuristic(
            max_moves=500, time_limit=5.0, seed=2
        ).match(g, 0.5)
        assert result.pairs == [(0, 2)]

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            BestAssignmentHeuristic(max_moves=-1)
        with pytest.raises(ValueError):
            BestAssignmentHeuristic(time_limit=0.0)

    def test_seed_controls_randomness(self):
        g = SimilarityGraph.from_edges(
            3, 3, [(i, j, 0.5 + 0.04 * (i + j)) for i in range(3) for j in range(3)]
        )
        a = BestAssignmentHeuristic(max_moves=50, time_limit=5.0, seed=1)
        b = BestAssignmentHeuristic(max_moves=50, time_limit=5.0, seed=1)
        assert a.match(g, 0.4).pairs == b.match(g, 0.4).pairs


class TestKRCAndGSM:
    def test_second_chance_extends_matching(self):
        # a0 and a1 both prefer b0; a1 wins it (0.9 > 0.8).  a0's list
        # is then exhausted... unless it retries and wins b1.
        g = SimilarityGraph.from_edges(
            2, 2, [(0, 0, 0.8), (1, 0, 0.9), (0, 1, 0.7)]
        )
        result = KiralyClustering().match(g, 0.5)
        assert sorted(result.pairs) == [(0, 1), (1, 0)]

    def test_krc_matches_gsm_without_ties(self):
        g = SimilarityGraph.from_edges(
            3,
            3,
            [(0, 0, 0.9), (0, 1, 0.6), (1, 0, 0.7), (1, 1, 0.8), (2, 2, 0.55)],
        )
        krc = KiralyClustering().match(g, 0.5)
        gsm = GaleShapleyMatching().match(g, 0.5)
        assert sorted(krc.pairs) == sorted(gsm.pairs)

    def test_gsm_trade_up(self):
        # b0 accepts a0 first (order), then trades up to a1.
        g = SimilarityGraph.from_edges(
            2, 1, [(0, 0, 0.6), (1, 0, 0.9)]
        )
        result = GaleShapleyMatching().match(g, 0.5)
        assert result.pairs == [(1, 0)]


class TestRSR:
    def test_prefers_heavier_seeds(self):
        g = SimilarityGraph.from_edges(
            2, 2, [(0, 0, 0.9), (1, 1, 0.7)]
        )
        result = RicochetSRClustering().match(g, 0.5)
        assert sorted(result.pairs) == [(0, 0), (1, 1)]

    def test_seed_promotion_cascade(self):
        # Replaying Algorithm 1: seed b0 captures a1 (0.9); later a1
        # becomes a seed itself, captures the unassigned b1 and leaves
        # b0's partition (lines 21-24 of the pseudocode).  The lonely
        # b0 is then re-assigned to its best available neighbour a0,
        # but only as a member of a singleton partition, so the output
        # pair is (a1, b1) — the rippling sacrifices the 0.9 edge, one
        # reason the paper finds RSR "rarely achieves high
        # effectiveness".
        g = SimilarityGraph.from_edges(
            2, 2, [(0, 0, 0.8), (1, 0, 0.9), (1, 1, 0.6)]
        )
        result = RicochetSRClustering().match(g, 0.5)
        result.validate(g)
        assert result.pairs == [(1, 1)]

    def test_isolated_below_threshold(self):
        g = SimilarityGraph.from_edges(2, 2, [(0, 0, 0.2)])
        result = RicochetSRClustering().match(g, 0.5)
        assert result.pairs == []


class TestHungarian:
    def test_exact_on_rectangular(self):
        g = SimilarityGraph.from_edges(
            2, 3, [(0, 0, 0.9), (0, 2, 0.8), (1, 0, 0.85), (1, 1, 0.1)]
        )
        result = HungarianMatching().match(g, 0.5)
        # Optimal: a0-b2 (0.8) + a1-b0 (0.85) = 1.65 > 0.9.
        assert sorted(result.pairs) == [(0, 2), (1, 0)]

    def test_size_guard(self):
        g = SimilarityGraph.from_edges(2, 2, [(0, 0, 0.9)])
        with pytest.raises(ValueError):
            HungarianMatching(max_dense_cells=1).match(g, 0.5)
