"""Metamorphic properties of the matching algorithms.

Beyond per-run invariants, these tests check how outputs transform
under input transformations the algorithms should (or should not) be
sensitive to:

* adding edges at or below the threshold never changes the result;
* swapping the two collections swaps the output of side-symmetric
  algorithms;
* a strictly monotone rescaling of the weights (with the threshold
  rescaled accordingly) leaves rank-based algorithms unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graph import SimilarityGraph
from repro.matching import create_matcher
from tests.conftest import similarity_graphs, thresholds_strategy

# Algorithms whose behaviour depends only on the weight *ranking*
# above the threshold (no sums, no randomness).
RANK_BASED = ["CNC", "BMC", "EXC", "KRC", "UMC", "GSM"]

# Algorithms whose definition is symmetric in the two collections
# (EXC: mutual best; CNC: components; UMC: global greedy with the only
# asymmetry in deterministic tie-breaking, avoided via distinct
# weights).
SIDE_SYMMETRIC = ["CNC", "EXC", "UMC"]

ALL_DETERMINISTIC = ["CNC", "RSR", "RCA", "BMC", "EXC", "KRC", "UMC", "GSM"]

# Algorithms that prune below-threshold edges *before* any other
# decision.  RSR is excluded because its seed ordering averages over
# ALL adjacent edges (Algorithm 1, line 7), and RCA because its
# assignment passes deliberately consider below-threshold pairs
# ("any job can be performed by all men") before the final filter —
# both are legitimately sensitive to edges below the threshold.
PRUNE_FIRST = ["CNC", "BMC", "EXC", "KRC", "UMC", "GSM"]


def _with_distinct_weights(graph: SimilarityGraph) -> SimilarityGraph:
    """Jitter weights so that no two edges tie (stable, order-keeping)."""
    if graph.n_edges == 0:
        return graph
    order = np.argsort(np.lexsort((graph.right, graph.left)))
    jitter = (order + 1) * 1e-6
    weights = np.clip(graph.weight * 0.9 + jitter, 0.0, 1.0)
    return SimilarityGraph(
        graph.n_left, graph.n_right, graph.left, graph.right, weights,
        validate=False,
    )


@pytest.mark.parametrize("code", PRUNE_FIRST)
@given(graph=similarity_graphs(), threshold=thresholds_strategy())
@settings(max_examples=30, deadline=None)
def test_below_threshold_edges_are_irrelevant(code, graph, threshold):
    """Adding edges at weights <= threshold must not change anything.

    (CNC and RCA use inclusive comparisons, so the added edges sit
    strictly below the threshold.)
    """
    matcher = create_matcher(code)
    baseline = matcher.match(graph, threshold)

    extra_weight = round(threshold - 0.0004, 6)
    if extra_weight <= 0 or graph.n_left == 0 or graph.n_right == 0:
        return
    existing = set(zip(graph.left.tolist(), graph.right.tolist()))
    extra = [
        (i, j, extra_weight)
        for i in range(graph.n_left)
        for j in range(graph.n_right)
        if (i, j) not in existing
    ][:5]
    if not extra:
        return
    augmented = SimilarityGraph(
        graph.n_left,
        graph.n_right,
        np.concatenate([graph.left, [e[0] for e in extra]]),
        np.concatenate([graph.right, [e[1] for e in extra]]),
        np.concatenate([graph.weight, [e[2] for e in extra]]),
        validate=False,
    )
    assert matcher.match(augmented, threshold).pairs == baseline.pairs


@pytest.mark.parametrize("code", SIDE_SYMMETRIC)
@given(graph=similarity_graphs(), threshold=thresholds_strategy())
@settings(max_examples=30, deadline=None)
def test_side_swap_symmetry(code, graph, threshold):
    """matching(swap(G)) == swap(matching(G)) for symmetric algorithms."""
    graph = _with_distinct_weights(graph)
    matcher = create_matcher(code)
    direct = matcher.match(graph, threshold)
    swapped = matcher.match(graph.swap_sides(), threshold)
    assert sorted((j, i) for i, j in swapped.pairs) == sorted(direct.pairs)


@pytest.mark.parametrize("code", RANK_BASED)
@given(graph=similarity_graphs(), threshold=thresholds_strategy())
@settings(max_examples=30, deadline=None)
def test_monotone_rescaling_invariance(code, graph, threshold):
    """A strictly monotone weight transform preserves the matching.

    Weights and threshold are both mapped through w -> w^2 (strictly
    increasing on [0, 1]), which preserves every comparison the
    rank-based algorithms perform.
    """
    matcher = create_matcher(code)
    baseline = matcher.match(graph, threshold)
    squared = SimilarityGraph(
        graph.n_left, graph.n_right, graph.left, graph.right,
        graph.weight**2, validate=False,
    )
    transformed = matcher.match(squared, threshold**2)
    assert transformed.pairs == baseline.pairs


@pytest.mark.parametrize("code", ALL_DETERMINISTIC)
@given(graph=similarity_graphs())
@settings(max_examples=30, deadline=None)
def test_zero_threshold_keeps_all_positive_edges_usable(code, graph):
    """At threshold 0 every positive-weight edge is a candidate: the
    matching size is bounded by the maximum possible matching size."""
    matcher = create_matcher(code)
    result = matcher.match(graph, 0.0)
    bound = min(
        len(set(graph.left.tolist())), len(set(graph.right.tolist()))
    )
    assert len(result.pairs) <= bound
