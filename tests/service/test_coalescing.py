"""Coalescing equivalence: batched execution changes *when*, not *what*.

The micro-batch scheduler shares one kernel pass across concurrent
requests.  Because every schema-based measure scores each (query,
candidate) pair from exact per-pair statistics, batch composition can
never leak into a score — which these tests pin down as byte-identity
of response bodies between serial and concurrent execution.
"""

from __future__ import annotations

import asyncio

from repro.service import ServiceConfig, create_app
from repro.service.testclient import run_app

SERVICE_DATASET = "d1"


def _config(**overrides) -> ServiceConfig:
    defaults = dict(
        datasets=(SERVICE_DATASET,),
        blocking="tokens",
        measure="jaccard",
        scale=0.05,
        max_pairs=200,
        tick=0.002,
        coalesce=True,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _bodies(app, queries, concurrent: bool, measure=None):
    """Response bodies for ``queries``, serially or all-concurrently."""

    async def scenario(client):
        async def one(query):
            body = {"dataset": SERVICE_DATASET, "record": query}
            if measure is not None:
                body["measure"] = measure
            response = await client.post("/resolve", json_body=body)
            assert response.status == 200, response.body
            return response

        if concurrent:
            responses = await asyncio.gather(*map(one, queries))
        else:
            responses = [await one(query) for query in queries]
        return responses

    return run_app(app, scenario)


class TestCoalescingEquivalence:
    def test_concurrent_equals_serial_byte_for_byte(self, left_texts):
        queries = [left_texts[k % len(left_texts)] for k in range(24)]
        serial_app = create_app(_config(coalesce=False))
        serial = _bodies(serial_app, queries, concurrent=False)
        batched_app = create_app(_config())
        batched = _bodies(batched_app, queries, concurrent=True)
        assert [r.body for r in serial] == [r.body for r in batched]
        # and the concurrent run actually coalesced
        sizes = [int(r.headers["x-batch-size"]) for r in batched]
        assert max(sizes) > 1

    def test_mixed_measures_coalesce_correctly(self, left_texts):
        """A tick may carry different measures; each group must score
        under its own measure, identical to its serial result."""
        queries = [left_texts[k % len(left_texts)] for k in range(8)]
        app = create_app(_config())

        async def mixed(client):
            async def one(query, measure):
                response = await client.post(
                    "/resolve",
                    json_body={
                        "dataset": SERVICE_DATASET,
                        "record": query,
                        "measure": measure,
                    },
                )
                assert response.status == 200
                return response.body

            jobs = []
            for k, query in enumerate(queries):
                measure = "jaccard" if k % 2 == 0 else "jaro"
                jobs.append(one(query, measure))
            return await asyncio.gather(*jobs)

        mixed_bodies = run_app(app, mixed)
        serial_app = create_app(_config(coalesce=False))
        jaccard = _bodies(
            serial_app, queries[0::2], concurrent=False, measure="jaccard"
        )
        serial_app2 = create_app(_config(coalesce=False))
        jaro = _bodies(
            serial_app2, queries[1::2], concurrent=False, measure="jaro"
        )
        expected = []
        for k in range(len(queries)):
            source = jaccard if k % 2 == 0 else jaro
            expected.append(source[k // 2].body)
        assert mixed_bodies == expected

    def test_batch_size_reported_in_header_not_body(self, left_texts):
        """Timing-dependent diagnostics must stay out of the body, or
        byte-identity across modes would be unachievable."""
        app = create_app(_config())

        async def scenario(client):
            responses = await asyncio.gather(
                *[
                    client.post(
                        "/resolve",
                        json_body={
                            "dataset": SERVICE_DATASET,
                            "record": left_texts[0],
                        },
                    )
                    for _ in range(6)
                ]
            )
            for response in responses:
                assert int(response.headers["x-batch-size"]) >= 1
                assert b"batch" not in response.body
            return responses

        run_app(app, scenario)

    def test_max_batch_bounds_coalescing(self, left_texts):
        app = create_app(_config(max_batch=2))

        async def scenario(client):
            responses = await asyncio.gather(
                *[
                    client.post(
                        "/resolve",
                        json_body={
                            "dataset": SERVICE_DATASET,
                            "record": left_texts[k % len(left_texts)],
                        },
                    )
                    for k in range(8)
                ]
            )
            for response in responses:
                assert int(response.headers["x-batch-size"]) <= 2
            return responses

        run_app(app, scenario)


class TestSchedulerAccounting:
    def test_coalesced_run_executes_fewer_batches(self, left_texts):
        app = create_app(_config())
        queries = [left_texts[k % len(left_texts)] for k in range(12)]

        async def scenario(client):
            await asyncio.gather(
                *[
                    client.post(
                        "/resolve",
                        json_body={
                            "dataset": SERVICE_DATASET,
                            "record": query,
                        },
                    )
                    for query in queries
                ]
            )
            health = await client.get("/healthz")
            return health.json()["scheduler"]

        stats = run_app(app, scenario)
        assert stats["requests_served"] == len(queries)
        assert stats["batches_executed"] < len(queries)
