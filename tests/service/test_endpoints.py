"""Endpoint behavior of the resolution API over a warm app."""

from __future__ import annotations

from repro.matching.registry import ALGORITHM_CODES
from repro.service.testclient import run_app

SERVICE_DATASET = "d1"


class TestHealthz:
    def test_reports_ok_and_scheduler_stats(self, warm_app):
        async def scenario(client):
            response = await client.get("/healthz")
            assert response.status == 200
            payload = response.json()
            assert payload["status"] == "ok"
            assert payload["datasets"] == [SERVICE_DATASET]
            assert payload["scheduler"]["coalesce"] is True
            return payload

        run_app(warm_app, scenario)


class TestDatasets:
    def test_describes_frozen_indexes(self, warm_app):
        async def scenario(client):
            response = await client.get("/datasets")
            assert response.status == 200
            payload = response.json()
            (entry,) = payload["datasets"]
            assert entry["code"] == SERVICE_DATASET
            assert entry["blocking"].startswith("tokens:")
            assert entry["n_indexed"] > 0
            assert payload["default_measure"] == "jaccard"

        run_app(warm_app, scenario)


class TestResolve:
    def test_resolves_known_record(self, warm_app, left_texts):
        async def scenario(client):
            response = await client.post(
                "/resolve",
                json_body={
                    "dataset": SERVICE_DATASET,
                    "record": left_texts[0],
                },
            )
            assert response.status == 200
            assert "x-batch-size" in response.headers
            payload = response.json()
            assert payload["dataset"] == SERVICE_DATASET
            assert payload["measure"] == "jaccard"
            matches = payload["matches"]
            assert matches, "a real left record must block to candidates"
            scores = [match["score"] for match in matches]
            assert scores == sorted(scores, reverse=True)
            assert all(0.0 <= score <= 1.0 for score in scores)
            assert all(
                match["id"] and match["text"] for match in matches
            )

        run_app(warm_app, scenario)

    def test_top_k_truncates(self, warm_app, left_texts):
        async def scenario(client):
            body = {"dataset": SERVICE_DATASET, "record": left_texts[0]}
            full = await client.post("/resolve", json_body=body)
            one = await client.post(
                "/resolve", json_body={**body, "top_k": 1}
            )
            assert len(one.json()["matches"]) == 1
            assert (
                one.json()["matches"][0] == full.json()["matches"][0]
            )

        run_app(warm_app, scenario)

    def test_explicit_measure_changes_scores(self, warm_app, left_texts):
        async def scenario(client):
            body = {"dataset": SERVICE_DATASET, "record": left_texts[0]}
            jaccard = await client.post("/resolve", json_body=body)
            jaro = await client.post(
                "/resolve", json_body={**body, "measure": "jaro"}
            )
            assert jaro.status == 200
            assert jaro.json()["measure"] == "jaro"
            assert jaro.json() != jaccard.json()

        run_app(warm_app, scenario)

    def test_unknown_dataset_is_404(self, warm_app):
        async def scenario(client):
            response = await client.post(
                "/resolve", json_body={"dataset": "d9", "record": "x"}
            )
            assert response.status == 404
            assert "not served" in response.json()["detail"]

        run_app(warm_app, scenario)

    def test_unknown_measure_is_422(self, warm_app):
        async def scenario(client):
            response = await client.post(
                "/resolve",
                json_body={
                    "dataset": SERVICE_DATASET,
                    "record": "x",
                    "measure": "soundex",
                },
            )
            assert response.status == 422
            assert "unknown measure" in response.json()["detail"]

        run_app(warm_app, scenario)

    def test_missing_fields_are_422(self, warm_app):
        async def scenario(client):
            for body in (
                {"record": "x"},
                {"dataset": SERVICE_DATASET},
                {"dataset": SERVICE_DATASET, "record": ""},
                {"dataset": SERVICE_DATASET, "record": "x", "top_k": 0},
            ):
                response = await client.post("/resolve", json_body=body)
                assert response.status == 422, body

        run_app(warm_app, scenario)

    def test_non_object_body_is_400(self, warm_app):
        async def scenario(client):
            response = await client.post("/resolve", json_body=[1, 2])
            assert response.status == 400

        run_app(warm_app, scenario)


class TestMatch:
    LEFT = ["alpha beta", "gamma delta", "epsilon"]
    RIGHT = ["alpha beta", "delta gamma", "zeta"]

    def test_matches_collections(self, warm_app):
        async def scenario(client):
            response = await client.post(
                "/match",
                json_body={
                    "left": self.LEFT,
                    "right": self.RIGHT,
                    "algorithm": "umc",
                    "threshold": 0.3,
                },
            )
            assert response.status == 200
            payload = response.json()
            assert payload["algorithm"] == "UMC"
            pairs = payload["pairs"]
            assert {"left": 0, "right": 0, "score": 1.0} in pairs
            # unique-mapping: no left or right index repeats
            lefts = [pair["left"] for pair in pairs]
            rights = [pair["right"] for pair in pairs]
            assert len(set(lefts)) == len(lefts)
            assert len(set(rights)) == len(rights)
            assert all(
                pair["score"] >= 0.3 - 1e-12 for pair in pairs
            )

        run_app(warm_app, scenario)

    def test_every_algorithm_code_is_servable(self, warm_app):
        async def scenario(client):
            for code in sorted(ALGORITHM_CODES):
                response = await client.post(
                    "/match",
                    json_body={
                        "left": self.LEFT,
                        "right": self.RIGHT,
                        "algorithm": code,
                        "threshold": 0.5,
                    },
                )
                assert response.status == 200, (code, response.body)

        run_app(warm_app, scenario)

    def test_unknown_algorithm_is_422(self, warm_app):
        async def scenario(client):
            response = await client.post(
                "/match",
                json_body={
                    "left": ["a"],
                    "right": ["a"],
                    "algorithm": "XXX",
                },
            )
            assert response.status == 422
            assert "unknown algorithm" in response.json()["detail"]

        run_app(warm_app, scenario)

    def test_bad_threshold_is_422(self, warm_app):
        async def scenario(client):
            response = await client.post(
                "/match",
                json_body={
                    "left": ["a"],
                    "right": ["a"],
                    "algorithm": "UMC",
                    "threshold": 1.5,
                },
            )
            assert response.status == 422

        run_app(warm_app, scenario)

    def test_oversized_collection_is_422(self, warm_app):
        async def scenario(client):
            response = await client.post(
                "/match",
                json_body={
                    "left": ["a"] * 513,
                    "right": ["a"],
                    "algorithm": "UMC",
                },
            )
            assert response.status == 422
            assert "batch pipeline" in response.json()["detail"]

        run_app(warm_app, scenario)

    def test_match_agrees_with_direct_engine_call(self, warm_app):
        from repro.graph.bipartite import SimilarityGraph
        from repro.matching.registry import create_matcher
        from repro.pipeline.batched_strings import schema_based_matrix

        matrix = schema_based_matrix(self.LEFT, self.RIGHT, "jaccard")
        graph = SimilarityGraph.from_matrix(matrix, name="direct")
        expected = sorted(
            (i, j, float(matrix[i, j]))
            for i, j in create_matcher("UMC").match(graph, 0.3).pairs
        )

        async def scenario(client):
            response = await client.post(
                "/match",
                json_body={
                    "left": self.LEFT,
                    "right": self.RIGHT,
                    "algorithm": "UMC",
                    "threshold": 0.3,
                },
            )
            got = [
                (pair["left"], pair["right"], pair["score"])
                for pair in response.json()["pairs"]
            ]
            # JSON round-trips float64 exactly (shortest-repr), so
            # equality here is bit-equality with the direct call.
            assert got == expected

        run_app(warm_app, scenario)
