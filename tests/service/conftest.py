"""Shared fixtures for the service test suite.

The warm app is expensive (dataset generation + index builds), so the
module-scoped ``warm_app`` fixture builds it once per test module and
drives its lifespan per scenario through
:func:`repro.service.testclient.run_app`.
"""

from __future__ import annotations

import pytest

from repro.service import ServiceConfig, create_app

#: Small-but-real serving profile: d1 at minimum scale resolves in
#: well under a second per warmup and still exercises every layer
#: (generation, blocking index, kernels, scheduler).
SERVICE_DATASET = "d1"


def service_config(**overrides) -> ServiceConfig:
    defaults = dict(
        datasets=(SERVICE_DATASET,),
        blocking="tokens",
        measure="jaccard",
        scale=0.05,
        max_pairs=200,
        seed=42,
        tick=0.002,
        max_batch=64,
        coalesce=True,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture(scope="module")
def warm_app():
    """One app instance shared per test module (warmed per lifespan)."""
    return create_app(service_config())


@pytest.fixture(scope="module")
def left_texts(warm_app):
    """Real left-collection record texts to resolve, via a throwaway
    warmup of the same frozen configuration."""
    from repro.service.resolver import ResolverIndex

    index = ResolverIndex.build(
        SERVICE_DATASET, blocking="tokens", scale=0.05, max_pairs=200
    )
    lefts, _ = index.cache.texts()
    return lefts
