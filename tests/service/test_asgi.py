"""The dependency-free ASGI core: routing, errors, lifespan protocol."""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager

import pytest

from repro.service.asgi import App, HTTPError, JSONResponse
from repro.service.testclient import AsgiClient, LifespanFailed, run_app


def _demo_app() -> App:
    app = App()

    @app.route("GET", "/ping")
    async def ping(request):
        return JSONResponse({"pong": True, "q": request.query.get("q")})

    @app.route("POST", "/echo")
    async def echo(request):
        return JSONResponse({"received": request.json()})

    @app.route("GET", "/teapot")
    async def teapot(request):
        raise HTTPError(418, "short and stout")

    @app.route("GET", "/boom")
    async def boom(request):
        raise RuntimeError("handler exploded")

    return app


class TestRouting:
    def test_exact_path_dispatch(self):
        async def scenario(client):
            response = await client.get("/ping")
            assert response.status == 200
            assert response.json() == {"pong": True, "q": None}

        run_app(_demo_app(), scenario)

    def test_query_string_parsing(self):
        async def scenario(client):
            response = await client.get("/ping?q=hello")
            assert response.json()["q"] == "hello"

        run_app(_demo_app(), scenario)

    def test_unknown_path_is_404(self):
        async def scenario(client):
            response = await client.get("/nope")
            assert response.status == 404
            assert response.json() == {"detail": "not found"}

        run_app(_demo_app(), scenario)

    def test_wrong_method_is_405(self):
        async def scenario(client):
            response = await client.post("/ping")
            assert response.status == 405

        run_app(_demo_app(), scenario)


class TestBodies:
    def test_json_round_trip(self):
        async def scenario(client):
            response = await client.post("/echo", json_body={"a": [1, 2]})
            assert response.json() == {"received": {"a": [1, 2]}}

        run_app(_demo_app(), scenario)

    def test_malformed_json_is_400(self):
        async def scenario(client):
            response = await client.request("POST", "/echo", body=b"{nope")
            assert response.status == 400
            assert "malformed JSON" in response.json()["detail"]

        run_app(_demo_app(), scenario)

    def test_empty_body_is_400(self):
        async def scenario(client):
            response = await client.post("/echo")
            assert response.status == 400

        run_app(_demo_app(), scenario)

    def test_payloads_serialize_deterministically(self):
        # sort_keys + compact separators: equal payloads, equal bytes.
        a = JSONResponse({"b": 1, "a": [1.5, "x"]}).encode()
        b = JSONResponse({"a": [1.5, "x"], "b": 1}).encode()
        assert a == b


class TestErrors:
    def test_http_error_maps_to_status(self):
        async def scenario(client):
            response = await client.get("/teapot")
            assert response.status == 418
            assert response.json() == {"detail": "short and stout"}

        run_app(_demo_app(), scenario)

    def test_handler_crash_is_500_and_app_survives(self, capsys):
        async def scenario(client):
            response = await client.get("/boom")
            assert response.status == 500
            assert response.json() == {"detail": "internal server error"}
            # The app keeps serving after a handler crash.
            response = await client.get("/ping")
            assert response.status == 200

        run_app(_demo_app(), scenario)
        assert "handler exploded" in capsys.readouterr().err


class TestLifespanProtocol:
    def test_startup_and_shutdown_run_once_in_order(self):
        events: list[str] = []

        @asynccontextmanager
        async def lifespan(app):
            events.append("startup")
            yield
            events.append("shutdown")

        app = App(lifespan=lifespan)

        @app.route("GET", "/ping")
        async def ping(request):
            events.append("request")
            return JSONResponse({})

        async def scenario(client):
            await client.get("/ping")

        run_app(app, scenario)
        assert events == ["startup", "request", "shutdown"]

    def test_startup_failure_is_reported(self):
        @asynccontextmanager
        async def lifespan(app):
            raise RuntimeError("no artifacts")
            yield  # pragma: no cover

        app = App(lifespan=lifespan)

        async def main():
            async with AsgiClient(app):
                pass  # pragma: no cover - startup must fail

        with pytest.raises(LifespanFailed, match="no artifacts"):
            asyncio.run(main())

    def test_client_can_skip_lifespan(self):
        @asynccontextmanager
        async def lifespan(app):
            raise AssertionError("must not start")
            yield  # pragma: no cover

        app = App(lifespan=lifespan)

        @app.route("GET", "/ping")
        async def ping(request):
            return JSONResponse({})

        async def main():
            async with AsgiClient(app, lifespan=False) as client:
                response = await client.get("/ping")
                assert response.status == 200

        asyncio.run(main())
