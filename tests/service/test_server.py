"""The stdlib HTTP/1.1 bridge: real sockets, startup failure modes."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import ServiceConfig, create_app
from repro.service.server import ServiceStartupError, serve, serve_async

SERVICE_DATASET = "d1"


def _config(**overrides) -> ServiceConfig:
    defaults = dict(
        datasets=(SERVICE_DATASET,), scale=0.05, max_pairs=200
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def _http(reader, writer, method, path, payload=None):
    """One HTTP/1.1 exchange on an open connection."""
    body = json.dumps(payload).encode() if payload is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\nhost: t\r\n"
        f"content-length: {len(body)}\r\n\r\n"
    ).encode()
    writer.write(head + body)
    await writer.drain()
    raw = await reader.readuntil(b"\r\n\r\n")
    lines = raw.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    length = 0
    for line in lines[1:]:
        if line.lower().startswith("content-length"):
            length = int(line.split(":")[1])
    payload = await reader.readexactly(length)
    return status, json.loads(payload) if payload else None


class TestHttpBridge:
    def test_serves_json_api_over_real_sockets(self):
        app = create_app(_config())

        async def main():
            ready = asyncio.Event()
            task = asyncio.ensure_future(
                serve_async(app, "127.0.0.1", 0, ready=ready)
            )
            await ready.wait()
            port = app.state["server_port"]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            status, payload = await _http(reader, writer, "GET", "/healthz")
            assert status == 200
            assert payload["status"] == "ok"
            # keep-alive: a second request on the same connection
            status, payload = await _http(
                reader,
                writer,
                "POST",
                "/resolve",
                {"dataset": SERVICE_DATASET, "record": "main st"},
            )
            assert status == 200
            assert "matches" in payload
            status, payload = await _http(reader, writer, "GET", "/nope")
            assert status == 404
            writer.close()
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

        asyncio.run(main())

    def test_garbage_request_closes_connection_quietly(self):
        app = create_app(_config())

        async def main():
            ready = asyncio.Event()
            task = asyncio.ensure_future(
                serve_async(app, "127.0.0.1", 0, ready=ready)
            )
            await ready.wait()
            port = app.state["server_port"]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(b"NOT HTTP AT ALL\r\n\r\n")
            await writer.drain()
            assert await reader.read() == b""  # server just hangs up
            writer.close()
            # and the server still serves afterwards
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            status, _ = await _http(reader, writer, "GET", "/healthz")
            assert status == 200
            writer.close()
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

        asyncio.run(main())


class TestStartupFailures:
    def test_invalid_port_raises_before_warmup(self):
        with pytest.raises(ServiceStartupError, match="invalid port"):
            serve(create_app(_config()), port=70000)

    def test_unknown_dataset_fails_startup(self):
        app = create_app(_config(datasets=("nope",)))
        with pytest.raises(ServiceStartupError, match="unknown dataset"):
            serve(app, port=0)

    def test_bind_conflict_raises(self):
        app = create_app(_config())

        async def main():
            blocker = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = blocker.sockets[0].getsockname()[1]
            with pytest.raises(ServiceStartupError, match="cannot bind"):
                await serve_async(app, "127.0.0.1", port)
            blocker.close()
            await blocker.wait_closed()

        asyncio.run(main())


class TestCliServeErrors:
    def test_unknown_dataset_exits_one_with_message(self, capsys):
        from repro.cli import main

        rc = main(["serve", "zz", "--port", "0"])
        captured = capsys.readouterr()
        assert rc == 1
        assert captured.err.startswith("error:")
        assert "unknown dataset" in captured.err

    def test_bad_port_exits_one_with_message(self, capsys):
        from repro.cli import main

        rc = main(["serve", SERVICE_DATASET, "--port", "99999"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "invalid port" in captured.err

    def test_unknown_measure_exits_one_with_message(self, capsys):
        from repro.cli import main

        rc = main(["serve", SERVICE_DATASET, "--measure", "sounds-like"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "unknown measure" in captured.err

    def test_read_tier_without_store_is_rejected(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(
                [
                    "serve", SERVICE_DATASET,
                    "--store-read-tier", "/tmp/tier",
                ]
            )
