"""Warmup and lifespan behavior of the service app."""

from __future__ import annotations

import asyncio

import pytest

from repro.service import ServiceConfig, create_app
from repro.service.scheduler import MicroBatchScheduler
from repro.service.testclient import AsgiClient, LifespanFailed, run_app

SERVICE_DATASET = "d1"


def _config(**overrides) -> ServiceConfig:
    defaults = dict(
        datasets=(SERVICE_DATASET,), scale=0.05, max_pairs=200
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestWarmup:
    def test_cold_app_returns_503_everywhere(self):
        app = create_app(_config())

        async def main():
            async with AsgiClient(app, lifespan=False) as client:
                for method, path in (
                    ("GET", "/healthz"),
                    ("GET", "/datasets"),
                ):
                    response = await client.request(method, path)
                    assert response.status == 503, path
                response = await client.post(
                    "/resolve",
                    json_body={
                        "dataset": SERVICE_DATASET,
                        "record": "x",
                    },
                )
                assert response.status == 503

        asyncio.run(main())

    def test_startup_builds_indexes_once(self):
        app = create_app(_config())

        async def scenario(client):
            service = app.state["service"]
            index = service.index(SERVICE_DATASET)
            build_counts = dict(index.cache.build_counts)
            # Serving traffic must not rebuild any warm artifact.
            for _ in range(3):
                response = await client.get("/datasets")
                assert response.status == 200
            assert service is app.state["service"]
            assert index.cache.build_counts == build_counts

        run_app(app, scenario)

    def test_unknown_dataset_fails_startup(self):
        app = create_app(_config(datasets=("nope",)))

        async def main():
            async with AsgiClient(app):
                pass  # pragma: no cover - startup must fail

        with pytest.raises(LifespanFailed, match="unknown dataset"):
            asyncio.run(main())

    def test_invalid_blocking_fails_startup(self):
        app = create_app(_config(blocking="bogus"))

        async def main():
            async with AsgiClient(app):
                pass  # pragma: no cover - startup must fail

        with pytest.raises(LifespanFailed, match="blocking"):
            asyncio.run(main())


class TestShutdown:
    def test_shutdown_stops_scheduler_and_clears_state(self):
        app = create_app(_config())

        async def main():
            async with AsgiClient(app):
                scheduler = app.state["scheduler"]
                assert scheduler.running
            assert not scheduler.running
            assert "service" not in app.state
            assert "scheduler" not in app.state

        asyncio.run(main())

    def test_submit_after_close_is_rejected(self):
        app = create_app(_config())

        async def main():
            async with AsgiClient(app):
                scheduler = app.state["scheduler"]
            with pytest.raises(RuntimeError, match="not running"):
                await scheduler.submit(SERVICE_DATASET, "jaccard", "x")

        asyncio.run(main())

    def test_queued_work_fails_cleanly_on_close(self, left_texts):
        """A request stuck in the queue when the scheduler dies gets an
        exception, not an eternal hang."""
        app = create_app(_config())

        async def main():
            async with AsgiClient(app):
                scheduler = app.state["scheduler"]
                # Stop the drain task, then enqueue directly.
                scheduler._task.cancel()
                try:
                    await scheduler._task
                except asyncio.CancelledError:
                    pass
                loop = asyncio.get_running_loop()
                from repro.service.scheduler import _Pending

                pending = _Pending(
                    dataset=SERVICE_DATASET,
                    measure="jaccard",
                    query=left_texts[0],
                    top_k=5,
                    tag="",
                    future=loop.create_future(),
                )
                await scheduler._queue.put(pending)
                await scheduler.aclose()
                with pytest.raises(RuntimeError, match="stopped"):
                    pending.future.result()

        asyncio.run(main())


class TestSchedulerLifecycle:
    def test_start_is_idempotent(self):
        async def main():
            scheduler = MicroBatchScheduler(service=None)
            scheduler.start()
            task = scheduler._task
            scheduler.start()
            assert scheduler._task is task
            await scheduler.aclose()
            assert not scheduler.running

        asyncio.run(main())
