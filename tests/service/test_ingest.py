"""Warm ingestion: the service takes new records without a rebuild.

The lifespan protocol rebuilds the service per scenario, so each test
starts from the frozen warmup state and mutates its own instance.
"""

from __future__ import annotations

import pytest

from repro.service.resolver import ResolverIndex, ResolverService
from repro.service.testclient import run_app

SERVICE_DATASET = "d1"
NOVEL_TEXT = "zephyr quill obsidian marmalade"


@pytest.fixture(scope="module")
def warm_service():
    index = ResolverIndex.build(
        SERVICE_DATASET, blocking="tokens", scale=0.05, max_pairs=200
    )
    return ResolverService({index.code: index})


class TestResolverIngest:
    def test_ingested_record_resolves(self, warm_service):
        before = warm_service.index(SERVICE_DATASET).n_indexed
        report = warm_service.ingest(
            SERVICE_DATASET, [("novel-1", NOVEL_TEXT)]
        )
        assert report == {
            "dataset": SERVICE_DATASET,
            "added": 1,
            "n_indexed": before + 1,
        }
        (matches,) = warm_service.resolve_batch(
            SERVICE_DATASET, "jaccard", [NOVEL_TEXT], top_k=3
        )
        assert matches
        assert matches[0].record_id == "novel-1"
        assert matches[0].score == 1.0

    def test_existing_candidates_unchanged(self, warm_service):
        index = warm_service.index(SERVICE_DATASET)
        lefts, _ = index.cache.texts()
        before = index.probe.probe(lefts[0])
        n_before = index.n_indexed
        warm_service.ingest(
            SERVICE_DATASET, [("novel-2", "totally unrelated widget")]
        )
        after = index.probe.probe(lefts[0])
        assert after[after < n_before].tolist() == before.tolist()

    def test_rejects_empty_fields(self, warm_service):
        with pytest.raises(ValueError, match="non-empty"):
            warm_service.ingest(SERVICE_DATASET, [("", NOVEL_TEXT)])
        with pytest.raises(ValueError, match="non-empty"):
            warm_service.ingest(SERVICE_DATASET, [("id", "")])

    def test_unknown_dataset_raises(self, warm_service):
        with pytest.raises(KeyError, match="not served"):
            warm_service.ingest("d9", [("id", NOVEL_TEXT)])


class TestIngestEndpoint:
    def test_ingest_then_resolve_roundtrip(self, warm_app):
        async def scenario(client):
            response = await client.post(
                "/ingest",
                json_body={
                    "dataset": SERVICE_DATASET,
                    "records": [{"id": "novel-9", "text": NOVEL_TEXT}],
                },
            )
            assert response.status == 200
            payload = response.json()
            assert payload["dataset"] == SERVICE_DATASET
            assert payload["added"] == 1
            resolved = await client.post(
                "/resolve",
                json_body={
                    "dataset": SERVICE_DATASET,
                    "record": NOVEL_TEXT,
                },
            )
            assert resolved.status == 200
            matches = resolved.json()["matches"]
            assert matches and matches[0]["id"] == "novel-9"

        run_app(warm_app, scenario)

    def test_ingest_grows_reported_index(self, warm_app):
        async def scenario(client):
            datasets = await client.get("/datasets")
            (entry,) = datasets.json()["datasets"]
            before = entry["n_indexed"]
            await client.post(
                "/ingest",
                json_body={
                    "dataset": SERVICE_DATASET,
                    "records": [
                        {"id": "a", "text": "first extra"},
                        {"id": "b", "text": "second extra"},
                    ],
                },
            )
            datasets = await client.get("/datasets")
            (entry,) = datasets.json()["datasets"]
            assert entry["n_indexed"] == before + 2

        run_app(warm_app, scenario)

    def test_validation_errors(self, warm_app):
        async def scenario(client):
            bad_bodies = (
                {"dataset": SERVICE_DATASET},
                {"dataset": SERVICE_DATASET, "records": []},
                {"dataset": SERVICE_DATASET, "records": ["nope"]},
                {
                    "dataset": SERVICE_DATASET,
                    "records": [{"id": "x"}],
                },
                {
                    "dataset": SERVICE_DATASET,
                    "records": [{"id": "", "text": "y"}],
                },
            )
            for body in bad_bodies:
                response = await client.post("/ingest", json_body=body)
                assert response.status == 422, body
            missing = await client.post(
                "/ingest",
                json_body={
                    "dataset": "d9",
                    "records": [{"id": "x", "text": "y"}],
                },
            )
            assert missing.status == 404

        run_app(warm_app, scenario)
