"""Fault injection: a poisoned request degrades itself, nothing else.

The scheduler calls :func:`repro.testing.faults.maybe_inject` with a
per-request task key (``service/resolve/<dataset>/<tag>``) before a
request joins its batch — the same deterministic seam the resilient
pool exposes.  These tests arm rules against tagged requests and
assert the blast radius: the tagged request fails with a 500, its
batch mates succeed with byte-identical results, and the shared
frozen index keeps serving.
"""

from __future__ import annotations

import asyncio

from repro.service import ServiceConfig, create_app
from repro.service.testclient import run_app
from repro.testing import faults

SERVICE_DATASET = "d1"


def _config(**overrides) -> ServiceConfig:
    defaults = dict(
        datasets=(SERVICE_DATASET,), scale=0.05, max_pairs=200
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _resolve_body(record: str, tag: str = "") -> dict:
    body = {"dataset": SERVICE_DATASET, "record": record}
    if tag:
        body["tag"] = tag
    return body


class TestPoisonedRequestIsolation:
    def test_poisoned_request_fails_alone(self, monkeypatch, left_texts):
        faults.inject(
            monkeypatch,
            {"match": "/poison", "action": "error", "attempts": None},
        )
        app = create_app(_config())

        async def scenario(client):
            healthy_queries = left_texts[:6]
            jobs = [
                client.post("/resolve", json_body=_resolve_body(query))
                for query in healthy_queries
            ]
            jobs.append(
                client.post(
                    "/resolve",
                    json_body=_resolve_body(left_texts[0], tag="poison"),
                )
            )
            responses = await asyncio.gather(*jobs)
            poisoned = responses[-1]
            assert poisoned.status == 500
            assert poisoned.json() == {"detail": "internal server error"}
            for response in responses[:-1]:
                assert response.status == 200
            return responses[:-1]

        survivors = run_app(app, scenario)
        # The survivors' scores are exactly what an unpoisoned serial
        # run produces: the fault never reached the shared pass.
        clean_app = create_app(_config(coalesce=False))

        async def clean(client):
            out = []
            for query in left_texts[:6]:
                response = await client.post(
                    "/resolve", json_body=_resolve_body(query)
                )
                out.append(response)
            return out

        baseline = run_app(clean_app, clean)
        assert [r.body for r in survivors] == [r.body for r in baseline]

    def test_index_survives_poison_and_keeps_serving(
        self, monkeypatch, left_texts
    ):
        faults.inject(
            monkeypatch,
            {"match": "/poison", "action": "error", "attempts": None},
        )
        app = create_app(_config())

        async def scenario(client):
            before = await client.post(
                "/resolve", json_body=_resolve_body(left_texts[0])
            )
            poisoned = await client.post(
                "/resolve",
                json_body=_resolve_body(left_texts[0], tag="poison"),
            )
            assert poisoned.status == 500
            after = await client.post(
                "/resolve", json_body=_resolve_body(left_texts[0])
            )
            assert before.status == after.status == 200
            assert before.body == after.body
            health = await client.get("/healthz")
            assert health.json()["status"] == "ok"

        run_app(app, scenario)

    def test_first_attempt_rule_spares_untagged_requests(
        self, monkeypatch, left_texts
    ):
        """Rules match the task key; requests without the poisoned tag
        never fire them even when the rule matches the dataset part."""
        faults.inject(
            monkeypatch,
            {
                "match": f"service/resolve/{SERVICE_DATASET}/bad",
                "action": "error",
                "attempts": None,
            },
        )
        app = create_app(_config())

        async def scenario(client):
            good = await client.post(
                "/resolve",
                json_body=_resolve_body(left_texts[0], tag="good"),
            )
            bad = await client.post(
                "/resolve",
                json_body=_resolve_body(left_texts[0], tag="bad"),
            )
            assert good.status == 200
            assert bad.status == 500

        run_app(app, scenario)

    def test_unarmed_environment_is_fault_free(self, left_texts):
        app = create_app(_config())

        async def scenario(client):
            response = await client.post(
                "/resolve",
                json_body=_resolve_body(left_texts[0], tag="poison"),
            )
            assert response.status == 200

        run_app(app, scenario)


class TestResolverErrorIsolation:
    def test_engine_error_fails_only_its_group(self, left_texts):
        """A request whose group raises (unknown measure reaching the
        engine) must not fail other groups in the same tick."""
        app = create_app(_config())

        async def scenario(client):
            scheduler = app.state["scheduler"]
            # Bypass handler validation to hit the engine-level error
            # path inside a shared tick.
            good = scheduler.submit(
                SERVICE_DATASET, "jaccard", left_texts[0]
            )
            bad = scheduler.submit(
                SERVICE_DATASET, "not-a-measure", left_texts[0]
            )
            results = await asyncio.gather(
                good, bad, return_exceptions=True
            )
            matches, batch_size = results[0]
            assert batch_size >= 1
            assert isinstance(results[1], KeyError)

        run_app(app, scenario)
