"""Workers-equivalence of the cell-parallel matching sweep driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_matching_sweeps
from repro.graph import SimilarityGraph
from repro.matching.registry import PAPER_ALGORITHM_CODES
from repro.pipeline.workbench import GraphRecord


def synthetic_records(n_graphs=3, seed=7):
    rng = np.random.default_rng(seed)
    records = []
    for index in range(n_graphs):
        m = 100 + 20 * index
        graph = SimilarityGraph(
            16,
            14,
            rng.integers(0, 16, m),
            rng.integers(0, 14, m),
            np.maximum(np.round(rng.random(m), 2), 0.01),
            name=f"g{index}",
        )
        truth = {(int(i), int(i % 14)) for i in range(12)}
        records.append(
            GraphRecord(
                graph=graph,
                dataset=f"d{index}",
                family="synthetic",
                function=f"fn{index}",
                category="BLC",
                ground_truth=truth,
            )
        )
    return records


CONFIG = ExperimentConfig(bah_max_moves=150, bah_time_limit=60.0)


def _flatten(results):
    return [
        (
            result.dataset,
            code,
            [
                (point.threshold, point.scores)
                for point in sweep.points
            ],
        )
        for result in results
        for code, sweep in result.sweeps.items()
    ]


class TestRunMatchingSweeps:
    def test_serial_covers_grid_and_codes(self):
        results = run_matching_sweeps(synthetic_records(), CONFIG)
        assert len(results) == 3
        for result in results:
            assert tuple(result.sweeps) == PAPER_ALGORITHM_CODES
            for sweep in result.sweeps.values():
                assert len(sweep.points) == len(CONFIG.grid)

    def test_results_invariant_under_workers(self):
        serial = run_matching_sweeps(synthetic_records(), CONFIG, workers=1)
        parallel = run_matching_sweeps(
            synthetic_records(), CONFIG, workers=3
        )
        assert _flatten(serial) == _flatten(parallel)

    def test_custom_codes_roundtrip(self):
        codes = ("UMC", "HUN", "GSM")
        serial = run_matching_sweeps(
            synthetic_records(1), CONFIG, codes=codes
        )
        parallel = run_matching_sweeps(
            synthetic_records(1), CONFIG, codes=codes, workers=2
        )
        assert tuple(serial[0].sweeps) == codes
        assert _flatten(serial) == _flatten(parallel)

    def test_single_record_single_worker_edge(self):
        records = synthetic_records(1)
        results = run_matching_sweeps(records, CONFIG, workers=2)
        assert len(results) == 1
        assert tuple(results[0].sweeps) == PAPER_ALGORITHM_CODES

    def test_one_task_per_graph(self, monkeypatch):
        """The chunked driver pickles each graph once, not per cell."""
        from concurrent import futures as futures_module

        submitted = []
        original = futures_module.ProcessPoolExecutor.submit

        def counting_submit(self, fn, *args, **kwargs):
            # The resilient runner submits its _run_task wrapper; the
            # payload function is the third wrapper argument.
            submitted.append(args[2].__name__)
            return original(self, fn, *args, **kwargs)

        monkeypatch.setattr(
            futures_module.ProcessPoolExecutor, "submit", counting_submit
        )
        records = synthetic_records(3)
        run_matching_sweeps(records, CONFIG, workers=2)
        assert submitted == ["_sweep_graph"] * len(records)


class TestCliSweepWorkers:
    @pytest.fixture
    def csv_inputs(self, tmp_path):
        rng = np.random.default_rng(11)
        graph_path = tmp_path / "graph.csv"
        truth_path = tmp_path / "truth.csv"
        lines = ["left,right,weight"]
        for _ in range(120):
            lines.append(
                f"{rng.integers(0, 12)},{rng.integers(0, 12)},"
                f"{round(float(rng.random()), 2)}"
            )
        graph_path.write_text("\n".join(lines))
        truth_path.write_text(
            "\n".join(["left,right"] + [f"{i},{i}" for i in range(10)])
        )
        return graph_path, truth_path

    def test_sweep_table_invariant_under_workers(self, csv_inputs, capsys):
        from repro.cli import main

        graph_path, truth_path = csv_inputs
        assert main(["sweep", str(graph_path), str(truth_path)]) == 0
        serial_table = capsys.readouterr().out
        assert (
            main(
                [
                    "sweep",
                    str(graph_path),
                    str(truth_path),
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        parallel_table = capsys.readouterr().out
        # Timing columns differ between runs; compare the score columns.
        def scores_only(table):
            return [
                row.split()[:5]
                for row in table.splitlines()
                if row and not row.startswith(("Threshold", "-"))
            ]

        assert scores_only(serial_table) == scores_only(parallel_table)
