"""Integration tests of the experiment pipeline on the smoke profile.

One full protocol run (two tiny datasets) is shared by all tests via a
module-scoped fixture; every table/figure function must produce
well-formed output from it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import SMOKE_CONFIG, run_experiments
from repro.experiments.effectiveness import (
    family_effectiveness,
    macro_effectiveness,
    score_matrix,
    top_counts,
)
from repro.experiments.efficiency import (
    runtime_rank_order,
    runtime_table,
    scalability_points,
)
from repro.experiments.sota import run_sota_comparison
from repro.experiments.thresholds import (
    threshold_by_dataset,
    threshold_correlations,
    threshold_stats,
)
from repro.experiments.tradeoff import dominating_points, tradeoff_points
from repro.matching.registry import PAPER_ALGORITHM_CODES


@pytest.fixture(scope="module")
def results(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache")
    return run_experiments(SMOKE_CONFIG, cache_dir=cache)


@pytest.fixture(scope="module")
def cached_results(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache2")
    first = run_experiments(SMOKE_CONFIG, cache_dir=cache)
    second = run_experiments(SMOKE_CONFIG, cache_dir=cache)
    return first, second


class TestRunner:
    def test_produces_results(self, results):
        assert results
        for result in results:
            assert set(result.sweeps) == set(PAPER_ALGORITHM_CODES)
            assert result.n_edges > 0
            assert 0.0 < result.normalized_size <= 1.0

    def test_every_sweep_has_full_grid(self, results):
        for result in results:
            for sweep in result.sweeps.values():
                assert len(sweep.points) == 20

    def test_noise_filter_applied(self, results):
        for result in results:
            best = max(
                s.best_scores.f_measure for s in result.sweeps.values()
            )
            assert best >= 0.25

    def test_cache_roundtrip(self, cached_results):
        first, second = cached_results
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert a.function == b.function
            for code in PAPER_ALGORITHM_CODES:
                assert a.best_f1(code) == pytest.approx(b.best_f1(code))
                assert a.best_threshold(code) == b.best_threshold(code)


class TestEffectiveness:
    def test_macro_table_shape(self, results):
        rows = macro_effectiveness(results)
        assert [r.algorithm for r in rows] == list(PAPER_ALGORITHM_CODES)
        for row in rows:
            assert 0.0 <= row.f1_mu <= 1.0
            assert row.n_graphs == len(results)

    def test_family_breakdown_covers_all(self, results):
        breakdown = family_effectiveness(results)
        assert set(breakdown) == {r.family for r in results}

    def test_score_matrix(self, results):
        matrix = score_matrix(results, "f_measure")
        assert matrix.shape == (len(results), 8)
        assert matrix.min() >= 0.0
        assert matrix.max() <= 1.0

    def test_score_matrix_invalid_metric(self, results):
        with pytest.raises(ValueError):
            score_matrix(results, "accuracy")

    def test_top_counts_consistency(self, results):
        table = top_counts(results)
        for (family, category), counters in table.items():
            n_group = sum(
                1
                for r in results
                if r.family == family and r.category == category
            )
            top1_total = sum(c.top1 for c in counters.values())
            # Ties can push the total above the group size, never below.
            assert top1_total >= n_group


class TestEfficiency:
    def test_runtime_table_cells(self, results):
        cells = runtime_table(results)
        assert cells
        for cell in cells:
            assert cell.mean_seconds >= 0.0
            assert cell.n_graphs > 0

    def test_scalability_points_cover_results(self, results):
        figure = scalability_points(results)
        total = sum(
            len(points)
            for by_algorithm in figure.values()
            for points in by_algorithm.values()
        )
        assert total == len(results) * 8

    def test_rank_order_is_permutation(self, results):
        order = runtime_rank_order(results)
        assert sorted(order) == sorted(PAPER_ALGORITHM_CODES)


class TestThresholds:
    def test_stats_quartiles_ordered(self, results):
        table = threshold_stats(results)
        for rows in table.values():
            for row in rows:
                assert (
                    row.minimum <= row.q1 <= row.median <= row.q3
                    <= row.maximum
                )
                assert -1.0 <= row.correlation_with_size <= 1.0

    def test_by_dataset_covers_groups(self, results):
        table = threshold_by_dataset(results)
        assert set(table) == {(r.family, r.dataset) for r in results}

    def test_correlation_matrices(self, results):
        figure = threshold_correlations(results)
        for matrix in figure.values():
            assert matrix.shape == (8, 8)
            assert np.allclose(matrix, matrix.T)
            assert np.allclose(np.diag(matrix), 1.0)


class TestTradeoff:
    def test_points_and_pareto(self, results):
        dataset = results[0].dataset
        points = tradeoff_points(results, dataset)
        assert points
        frontier = dominating_points(points)
        assert frontier
        assert set(frontier) <= set(points)
        # No frontier point is dominated by any other point.
        for p in frontier:
            assert not any(q.dominates(p) for q in points)


class TestSota:
    def test_comparison_rows(self):
        rows = run_sota_comparison(
            datasets=("d2",),
            scale=0.03,
            max_pairs=4000,
            ngram_models=(("token", 1),),
        )
        assert len(rows) == 1
        row = rows[0]
        assert 0.0 <= row.zeroer_f1 <= 1.0
        assert 0.0 <= row.learned_f1 <= 1.0
        assert 0.0 <= row.umc_f1 <= 1.0
        assert row.umc_model == "token1"
