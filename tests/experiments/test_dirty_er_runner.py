"""Dirty-ER corpus + sweep pipeline tests.

Covers :func:`generate_dirty_corpus` (self-join graphs, caching,
workers/store invariance) and :func:`run_dirty_er_sweeps`
(sweep-native clustering, worker-count invariance, score equality with
the scalar per-call path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.metrics import evaluate_clusters
from repro.evaluation.sweep import dirty_threshold_sweep
from repro.experiments.dirty_er import run_dirty_er_sweeps
from repro.extensions.dirty_er import DIRTY_ALGORITHM_CODES, create_clusterer
from repro.pipeline.workbench import (
    GraphCorpusConfig,
    generate_dirty_corpus,
)

CONFIG = GraphCorpusConfig(
    datasets=("d1", "d2"),
    scale=0.03,
    max_pairs=2_000,
    schema_based_measures=("levenshtein", "jaccard"),
    ngram_models=(("token", 1),),
    vector_measures=("cosine_tfidf",),
    graph_measures=("containment",),
    semantic_models=("fasttext_like",),
    semantic_measures=("cosine",),
    max_attributes=1,
)

GRID = tuple(round(0.2 * k, 2) for k in range(1, 6))


@pytest.fixture(scope="module")
def corpus():
    return generate_dirty_corpus(CONFIG)


def _assert_same_dirty_corpus(first, second):
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert (a.dataset, a.family, a.function, a.category) == (
            b.dataset, b.family, b.function, b.category
        )
        assert a.ground_truth == b.ground_truth
        assert a.graph.n_nodes == b.graph.n_nodes
        assert np.array_equal(a.graph.u, b.graph.u)
        assert np.array_equal(a.graph.v, b.graph.v)
        assert np.array_equal(a.graph.weight, b.graph.weight)


class TestDirtyCorpus:
    def test_self_join_shape(self, corpus):
        assert corpus, "smoke config must produce dirty graphs"
        for record in corpus:
            graph = record.graph
            assert (graph.u < graph.v).all()
            assert record.dataset.endswith("+self")
            # Merged truth pairs always cross the left/right boundary.
            assert all(u < v for u, v in record.ground_truth)

    def test_truth_is_reachable(self, corpus):
        # The zero-evidence filter guarantees every kept graph has at
        # least one ground-truth pair among its edges.
        for record in corpus:
            keys = set(
                zip(record.graph.u.tolist(), record.graph.v.tolist())
            )
            assert keys & record.ground_truth

    def test_cache_roundtrip(self, corpus, tmp_path):
        first = generate_dirty_corpus(CONFIG, cache_dir=tmp_path)
        reloaded = generate_dirty_corpus(CONFIG, cache_dir=tmp_path)
        _assert_same_dirty_corpus(first, reloaded)
        _assert_same_dirty_corpus(corpus, reloaded)

    def test_workers_do_not_change_corpus(self, corpus):
        parallel = generate_dirty_corpus(CONFIG, workers=2)
        _assert_same_dirty_corpus(corpus, parallel)

    def test_store_does_not_change_corpus(self, corpus, tmp_path):
        cold = generate_dirty_corpus(CONFIG, artifact_store=tmp_path)
        warm = generate_dirty_corpus(CONFIG, artifact_store=tmp_path)
        _assert_same_dirty_corpus(corpus, cold)
        _assert_same_dirty_corpus(corpus, warm)

    def test_dirty_and_bipartite_store_keys_disjoint(self, tmp_path):
        from repro.pipeline.store import ArtifactStore

        generate_dirty_corpus(CONFIG, artifact_store=tmp_path)
        dirty_datasets = {
            entry.dataset for entry in ArtifactStore(tmp_path).entries()
        }
        assert dirty_datasets and all(
            code.endswith("+self") for code in dirty_datasets
        )


class TestDirtySweeps:
    def test_sweep_matches_per_call_path(self, corpus):
        record = corpus[0]
        clusterer = create_clusterer("CC")
        sweep = dirty_threshold_sweep(
            clusterer, record.graph, record.ground_truth, GRID
        )
        assert [point.threshold for point in sweep.points] == list(GRID)
        for point in sweep.points:
            clusters = clusterer.cluster(record.graph, point.threshold)
            assert point.scores == evaluate_clusters(
                clusters, record.ground_truth
            )

    def test_all_codes_present(self, corpus):
        results = run_dirty_er_sweeps(corpus[:2], grid=GRID)
        for result in results:
            assert set(result.sweeps) == set(DIRTY_ALGORITHM_CODES)
            for sweep in result.sweeps.values():
                assert len(sweep.points) == len(GRID)

    def test_workers_do_not_change_results(self, corpus):
        serial = run_dirty_er_sweeps(corpus[:3], grid=GRID)
        parallel = run_dirty_er_sweeps(corpus[:3], grid=GRID, workers=2)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert set(a.sweeps) == set(b.sweeps)
            for code in a.sweeps:
                pa = [(p.threshold, p.scores) for p in a.sweeps[code].points]
                pb = [(p.threshold, p.scores) for p in b.sweeps[code].points]
                assert pa == pb

    def test_single_record_pool_fallback(self, corpus):
        serial = run_dirty_er_sweeps(corpus[:1], grid=GRID)
        parallel = run_dirty_er_sweeps(corpus[:1], grid=GRID, workers=2)
        for code in DIRTY_ALGORITHM_CODES:
            pa = [
                (p.threshold, p.scores)
                for p in serial[0].sweeps[code].points
            ]
            pb = [
                (p.threshold, p.scores)
                for p in parallel[0].sweeps[code].points
            ]
            assert pa == pb

    def test_skip_equivalent_grid_points_share_scores(self, corpus):
        # A grid far denser than the weight resolution: consecutive
        # equal-selection points must reuse the previous result.
        record = corpus[0]
        dense_grid = tuple(round(0.001 * k, 3) for k in range(990, 1001))
        sweep = dirty_threshold_sweep(
            create_clusterer("CC"),
            record.graph,
            record.ground_truth,
            dense_grid,
        )
        clusterer = create_clusterer("CC")
        for point in sweep.points:
            clusters = clusterer.cluster(record.graph, point.threshold)
            assert point.scores == evaluate_clusters(
                clusters, record.ground_truth
            )
