"""Tests for the n-gram vector models and their similarity measures."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vectorspace import (
    arcs_matrix,
    build_vector_models,
    cosine_matrix,
    generalized_jaccard_matrix,
    jaccard_matrix,
    ngram_profiles,
)
from repro.vectorspace.measures import pairwise_min_sum

corpus = st.lists(
    st.text(alphabet="abcde ", min_size=0, max_size=15), min_size=1, max_size=5
)


class TestProfiles:
    def test_char_profiles(self):
        profiles = ngram_profiles(["abab"], 2, "char")
        assert profiles[0] == {"ab": 2, "ba": 1}

    def test_token_profiles(self):
        profiles = ngram_profiles(["red fox red"], 1, "token")
        assert profiles[0] == {"red": 2, "fox": 1}

    def test_invalid_unit(self):
        with pytest.raises(ValueError):
            ngram_profiles(["x"], 2, "bytes")


class TestVectorModelConstruction:
    def test_shared_vocabulary(self):
        left, right = build_vector_models(
            ["abc"], ["bcd"], n=2, unit="char"
        )
        assert left.vocabulary == right.vocabulary
        assert left.matrix.shape[1] == right.matrix.shape[1]

    def test_tf_weights_normalized(self):
        left, _ = build_vector_models(["aaab"], ["x"], n=1, unit="char")
        row = left.matrix.getrow(0).toarray().ravel()
        # TF of 'a' = 3/4, of 'b' = 1/4.
        assert sorted(v for v in row if v > 0) == pytest.approx([0.25, 0.75])

    def test_tfidf_downweights_common_grams(self):
        left, right = build_vector_models(
            ["ax", "ay", "az"], ["aw"], n=1, unit="char", weighting="tfidf"
        )
        vocab = left.vocabulary
        # 'a' occurs in all 4 entities: idf = log(4/5) < 0 -> clamped to 0.
        a_col = vocab["a"]
        assert left.matrix[:, a_col].toarray().max() == 0.0
        # 'x' occurs once: positive weight.
        x_col = vocab["x"]
        assert left.matrix[0, x_col] > 0.0

    def test_invalid_weighting(self):
        with pytest.raises(ValueError):
            build_vector_models(["a"], ["b"], n=1, unit="char", weighting="bm25")

    def test_document_frequency_per_collection(self):
        left, right = build_vector_models(
            ["ab", "ab"], ["ab"], n=2, unit="char"
        )
        col = left.vocabulary["ab"]
        assert left.document_frequency[col] == 2
        assert right.document_frequency[col] == 1

    def test_empty_text_gives_zero_row(self):
        left, _ = build_vector_models(["", "ab"], ["ab"], n=2, unit="char")
        assert left.matrix.getrow(0).nnz == 0


class TestCosine:
    def test_identical_texts(self):
        left, right = build_vector_models(["abcd"], ["abcd"], 2, "char")
        assert cosine_matrix(left, right)[0, 0] == pytest.approx(1.0)

    def test_disjoint_texts(self):
        left, right = build_vector_models(["aaaa"], ["zzzz"], 2, "char")
        assert cosine_matrix(left, right)[0, 0] == 0.0

    def test_shape(self):
        left, right = build_vector_models(
            ["ab", "cd", "ef"], ["ab", "cd"], 2, "char"
        )
        assert cosine_matrix(left, right).shape == (3, 2)

    @given(corpus, corpus)
    @settings(max_examples=25, deadline=None)
    def test_range(self, texts_left, texts_right):
        left, right = build_vector_models(texts_left, texts_right, 2, "char")
        sims = cosine_matrix(left, right)
        assert sims.min() >= -1e-9
        assert sims.max() <= 1.0 + 1e-9


class TestJaccard:
    def test_known_value(self):
        # grams 'ab','bc' vs 'bc','cd': intersection 1, union 3.
        left, right = build_vector_models(["abc"], ["bcd"], 2, "char")
        assert jaccard_matrix(left, right)[0, 0] == pytest.approx(1 / 3)

    @given(corpus, corpus)
    @settings(max_examples=25, deadline=None)
    def test_range(self, texts_left, texts_right):
        left, right = build_vector_models(texts_left, texts_right, 2, "char")
        sims = jaccard_matrix(left, right)
        assert sims.min() >= 0.0
        assert sims.max() <= 1.0 + 1e-9


class TestGeneralizedJaccard:
    def test_identical_is_one(self):
        left, right = build_vector_models(["abab"], ["abab"], 2, "char")
        assert generalized_jaccard_matrix(left, right)[0, 0] == pytest.approx(
            1.0
        )

    def test_matches_bruteforce(self):
        texts_left = ["abcab", "xyz"]
        texts_right = ["abc", "xyyz"]
        left, right = build_vector_models(texts_left, texts_right, 2, "char")
        sims = generalized_jaccard_matrix(left, right)
        dense_left = left.matrix.toarray()
        dense_right = right.matrix.toarray()
        for i in range(2):
            for j in range(2):
                mins = np.minimum(dense_left[i], dense_right[j]).sum()
                maxs = np.maximum(dense_left[i], dense_right[j]).sum()
                expected = mins / maxs if maxs > 0 else 0.0
                assert sims[i, j] == pytest.approx(expected)

    @given(corpus, corpus)
    @settings(max_examples=25, deadline=None)
    def test_range(self, texts_left, texts_right):
        left, right = build_vector_models(texts_left, texts_right, 2, "char")
        sims = generalized_jaccard_matrix(left, right)
        assert sims.min() >= 0.0
        assert sims.max() <= 1.0 + 1e-9


class TestPairwiseMinSum:
    @given(corpus, corpus)
    @settings(max_examples=25, deadline=None)
    def test_matches_dense_computation(self, texts_left, texts_right):
        left, right = build_vector_models(texts_left, texts_right, 2, "char")
        fast = pairwise_min_sum(left.matrix, right.matrix)
        dense_left = left.matrix.toarray()
        dense_right = right.matrix.toarray()
        slow = np.zeros_like(fast)
        for i in range(dense_left.shape[0]):
            for j in range(dense_right.shape[0]):
                slow[i, j] = np.minimum(dense_left[i], dense_right[j]).sum()
        assert np.allclose(fast, slow)


class TestArcs:
    def test_rare_grams_score_higher(self):
        # 'xy' appears once per collection (DF product 1, clamped to 2);
        # 'ab' appears twice on each side (DF product 4).
        left, right = build_vector_models(
            ["xy ab", "ab"], ["xy", "ab", "ab cd"], 1, "token"
        )
        sims = arcs_matrix(left, right)
        # Pair sharing the rare 'xy' outscores the pair sharing 'ab'.
        assert sims[0, 0] > sims[1, 1]

    def test_no_common_grams_is_zero(self):
        left, right = build_vector_models(["aa"], ["zz"], 2, "char")
        assert arcs_matrix(left, right)[0, 0] == 0.0

    def test_non_negative(self):
        left, right = build_vector_models(
            ["ab cd", "cd"], ["ab", "cd ef"], 1, "token"
        )
        assert arcs_matrix(left, right).min() >= 0.0
