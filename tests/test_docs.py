"""Documentation checks: intra-repo links and CLI-reference drift.

Two invariants keep the docs trustworthy (the CI ``docs`` job runs
exactly this module):

* every relative link in ``README.md`` and ``docs/*.md`` resolves to a
  file in the repository;
* ``docs/CLI.md`` matches the argparse parser in ``repro.cli`` — every
  subcommand has a section, every flag of a subcommand is documented
  in its section, and no section documents a flag its subcommand does
  not have.
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FLAG = re.compile(r"(?<![\w/-])--[a-zA-Z][\w-]*")


def _subparsers(parser: argparse.ArgumentParser):
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    return {}


def _long_flags(parser: argparse.ArgumentParser) -> set[str]:
    flags = set()
    for action in parser._actions:
        flags.update(
            s for s in action.option_strings if s.startswith("--")
        )
    flags.discard("--help")
    return flags


def _positionals(parser: argparse.ArgumentParser) -> set[str]:
    return {
        action.dest
        for action in parser._actions
        if not action.option_strings
        and not isinstance(action, argparse._SubParsersAction)
    }


def _sections(text: str, level: int) -> dict[str, str]:
    """Heading title -> body until the next heading of <= ``level``."""
    marker = "#" * level
    pattern = re.compile(
        rf"^{marker} (.+?)$(.*?)(?=^#{{2,{level}}} |\Z)",
        re.MULTILINE | re.DOTALL,
    )
    return {
        match.group(1).strip(): match.group(2)
        for match in pattern.finditer(text)
    }


class TestIntraRepoLinks:
    @pytest.mark.parametrize(
        "doc", DOC_FILES, ids=[d.name for d in DOC_FILES]
    )
    def test_relative_links_resolve(self, doc):
        assert doc.exists(), f"missing documentation file {doc}"
        broken = []
        for target in _LINK.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not (doc.parent / path).resolve().exists():
                broken.append(target)
        assert broken == [], f"broken links in {doc.name}: {broken}"

    def test_docs_exist(self):
        names = {doc.name for doc in DOC_FILES}
        assert "README.md" in names
        assert "ARCHITECTURE.md" in names
        assert "CLI.md" in names


class TestCliReferenceDrift:
    """``docs/CLI.md`` must mirror ``repro.cli.build_parser`` exactly."""

    @pytest.fixture(scope="class")
    def text(self):
        return (REPO_ROOT / "docs" / "CLI.md").read_text()

    @pytest.fixture(scope="class")
    def commands(self):
        return _subparsers(build_parser())

    def test_every_command_has_a_section(self, text, commands):
        sections = _sections(text, 2)
        missing = [
            name for name in commands if f"repro {name}" not in sections
        ]
        assert missing == [], f"undocumented subcommands: {missing}"

    def test_no_section_for_unknown_command(self, text, commands):
        sections = _sections(text, 2)
        unknown = [
            title for title in sections
            if title.startswith("repro ")
            and title.removeprefix("repro ").split()[0] not in commands
        ]
        assert unknown == [], f"sections for unknown subcommands: {unknown}"

    def test_every_flag_documented_in_its_section(self, text, commands):
        sections = _sections(text, 2)
        problems = []
        for name, parser in commands.items():
            section = sections[f"repro {name}"]
            flags = _long_flags(parser)
            for sub in _subparsers(parser).values():
                flags |= _long_flags(sub)
            for flag in sorted(flags):
                if flag not in section:
                    problems.append(f"repro {name}: {flag} undocumented")
            for positional in sorted(_positionals(parser)):
                if f"`{positional}`" not in section:
                    problems.append(
                        f"repro {name}: positional `{positional}` "
                        "undocumented"
                    )
        assert problems == []

    def test_no_section_documents_a_foreign_flag(self, text, commands):
        sections = _sections(text, 2)
        problems = []
        for name, parser in commands.items():
            section = sections[f"repro {name}"]
            known = _long_flags(parser)
            for sub in _subparsers(parser).values():
                known |= _long_flags(sub)
            for flag in sorted(set(_FLAG.findall(section))):
                if flag not in known:
                    problems.append(
                        f"repro {name}: documents unknown flag {flag}"
                    )
        assert problems == []

    def test_nested_store_subcommands_have_sections(self, text, commands):
        store = _subparsers(commands["store"])
        assert store, "repro store lost its subcommands"
        sections = _sections(text, 3)
        for name, parser in store.items():
            title = f"repro store {name}"
            assert title in sections, f"undocumented: {title}"
            for flag in sorted(_long_flags(parser)):
                assert flag in sections[title], (
                    f"{title}: {flag} undocumented in its subsection"
                )

    def test_algorithm_codes_are_current(self, text):
        from repro.matching.registry import ALGORITHM_CODES

        documented = re.search(r"one of `([A-Z ]+)`", text)
        assert documented is not None
        assert documented.group(1).split() == sorted(ALGORITHM_CODES)


class TestResilienceDocs:
    """``docs/RESILIENCE.md`` must track the actual retry defaults."""

    @pytest.fixture(scope="class")
    def text(self):
        path = REPO_ROOT / "docs" / "RESILIENCE.md"
        assert path.exists(), "docs/RESILIENCE.md is missing"
        return path.read_text()

    def test_retry_policy_defaults_are_current(self, text):
        from repro.pipeline.resilience import RetryPolicy

        policy = RetryPolicy()
        table = re.findall(r"^\| `(\w+)` \| `([^`]+)` \|", text, re.M)
        documented = dict(table)
        for knob in (
            "max_retries",
            "backoff_seconds",
            "backoff_multiplier",
            "backoff_jitter",
            "deadline_seconds",
            "max_pool_failures",
            "poll_seconds",
        ):
            assert knob in documented, f"RESILIENCE.md lost the {knob} row"
            actual = getattr(policy, knob)
            assert documented[knob] == repr(actual).replace("'", ""), (
                f"RESILIENCE.md documents {knob} = {documented[knob]}, "
                f"code default is {actual!r}"
            )

    def test_documented_fault_actions_are_current(self, text):
        from repro.testing import faults

        for action in faults.ACTIONS:
            assert f"`{action}`" in text, (
                f"fault action {action!r} undocumented in RESILIENCE.md"
            )
