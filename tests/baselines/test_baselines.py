"""Tests for the GMM, ZeroER-like and learned matchers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GaussianMixture1D, LearnedMatcher, ZeroERLikeMatcher
from repro.baselines.learned import stack_feature_matrices
from repro.evaluation import evaluate_pairs
from repro.graph import SimilarityGraph


def _bimodal(rng, n=400):
    low = rng.normal(0.2, 0.05, n)
    high = rng.normal(0.8, 0.05, n // 4)
    return np.clip(np.concatenate([low, high]), 0, 1)


class TestGMM:
    def test_recovers_two_modes(self):
        rng = np.random.default_rng(0)
        values = _bimodal(rng)
        mixture = GaussianMixture1D().fit(values)
        means = sorted(mixture.means_)
        assert means[0] == pytest.approx(0.2, abs=0.05)
        assert means[1] == pytest.approx(0.8, abs=0.05)

    def test_posterior_separates_modes(self):
        rng = np.random.default_rng(1)
        mixture = GaussianMixture1D().fit(_bimodal(rng))
        posterior = mixture.predict_proba(np.array([0.15, 0.85]))
        assert posterior[0] < 0.1
        assert posterior[1] > 0.9

    def test_requires_two_observations(self):
        with pytest.raises(ValueError):
            GaussianMixture1D().fit(np.array([0.5]))

    def test_constant_data_does_not_crash(self):
        mixture = GaussianMixture1D().fit(np.full(20, 0.5))
        posterior = mixture.predict_proba(np.array([0.5]))
        assert 0.0 <= posterior[0] <= 1.0

    def test_weights_sum_to_one(self):
        rng = np.random.default_rng(2)
        mixture = GaussianMixture1D().fit(_bimodal(rng))
        assert mixture.weights_.sum() == pytest.approx(1.0)


class TestZeroERLike:
    def _graph_with_signal(self, rng, n=40, n_matches=20):
        edges = []
        truth = set()
        for i in range(n_matches):
            edges.append((i, i, float(np.clip(rng.normal(0.85, 0.05), 0, 1))))
            truth.add((i, i))
        for _ in range(n * 6):
            i = int(rng.integers(n))
            j = int(rng.integers(n))
            if i != j:
                edges.append(
                    (i, j, float(np.clip(rng.normal(0.25, 0.08), 0.01, 1)))
                )
        return SimilarityGraph.from_edges(n, n, edges), truth

    def test_finds_high_mode_matches(self):
        rng = np.random.default_rng(3)
        graph, truth = self._graph_with_signal(rng)
        result = ZeroERLikeMatcher().match(graph, 0.0)
        result.validate(graph)
        scores = evaluate_pairs(result.pairs, truth)
        assert scores.f_measure > 0.8

    def test_respects_one_to_one(self):
        graph = SimilarityGraph.from_edges(
            2, 2, [(0, 0, 0.9), (0, 1, 0.85), (1, 0, 0.2), (1, 1, 0.22)]
        )
        result = ZeroERLikeMatcher().match(graph, 0.0)
        result.validate(graph)

    def test_empty_graph(self):
        graph = SimilarityGraph.from_edges(3, 3, [])
        assert ZeroERLikeMatcher().match(graph, 0.0).pairs == []

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ZeroERLikeMatcher(posterior_threshold=1.5)


class TestLearnedMatcher:
    def _features_and_truth(self, rng, n=30):
        truth = {(i, i) for i in range(n)}
        signal = np.clip(rng.normal(0.8, 0.1, (n, n)), 0, 1)
        noise = np.clip(rng.normal(0.3, 0.1, (n, n)), 0, 1)
        feature = np.where(np.eye(n, dtype=bool), signal, noise)
        graph = SimilarityGraph.from_matrix(feature)
        features = stack_feature_matrices([graph, graph])
        return features, truth

    def test_learns_diagonal(self):
        rng = np.random.default_rng(4)
        features, truth = self._features_and_truth(rng)
        training = {(i, i) for i in range(15)}
        matcher = LearnedMatcher().fit(features, training)
        result = matcher.predict(features)
        scores = evaluate_pairs(result.pairs, truth)
        assert scores.f_measure > 0.8

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LearnedMatcher().predict(np.zeros((2, 2, 1)))

    def test_fit_requires_positives(self):
        with pytest.raises(ValueError):
            LearnedMatcher().fit(np.zeros((2, 2, 1)), set())

    def test_stack_requires_same_shapes(self):
        a = SimilarityGraph.from_edges(2, 2, [(0, 0, 0.5)])
        b = SimilarityGraph.from_edges(3, 2, [(0, 0, 0.5)])
        with pytest.raises(ValueError):
            stack_feature_matrices([a, b])

    def test_stack_requires_graphs(self):
        with pytest.raises(ValueError):
            stack_feature_matrices([])

    def test_prediction_respects_one_to_one(self):
        rng = np.random.default_rng(5)
        features, truth = self._features_and_truth(rng, n=10)
        matcher = LearnedMatcher().fit(features, truth)
        result = matcher.predict(features)
        lefts = [i for i, _ in result.pairs]
        rights = [j for _, j in result.pairs]
        assert len(lefts) == len(set(lefts))
        assert len(rights) == len(set(rights))
