"""Quickstart: bipartite graph matching on the paper's Figure 1 graph.

Builds the worked example graph of the paper, runs all eight matching
algorithms at threshold 0.5 and prints the partitions each produces —
replaying the walk-through of Section 3.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimilarityGraph, figure1_graph, paper_matchers
from repro.graph.examples import FIGURE1_LEFT_LABELS, FIGURE1_RIGHT_LABELS


def label(pair: tuple[int, int]) -> str:
    i, j = pair
    return f"{FIGURE1_LEFT_LABELS[i]}-{FIGURE1_RIGHT_LABELS[j]}"


def main() -> None:
    graph = figure1_graph()
    print("Similarity graph of Figure 1(a):")
    for i, j, weight in graph.edges():
        print(
            f"  {FIGURE1_LEFT_LABELS[i]} -- {FIGURE1_RIGHT_LABELS[j]}"
            f"  (w = {weight})"
        )

    print("\nMatching with every algorithm at t = 0.5:")
    matchers = paper_matchers(bah_max_moves=5_000, bah_time_limit=5.0)
    for code, matcher in matchers.items():
        result = matcher.match(graph, 0.5)
        result.validate(graph)
        pairs = ", ".join(label(p) for p in sorted(result.pairs)) or "(none)"
        weight = result.total_weight(graph)
        print(f"  {code}: {pairs}   total weight = {weight:.1f}")

    print(
        "\nNote how BAH finds the weight-optimal pairing A1-B1 + A5-B3 "
        "(sum 1.2 > 0.9),\nwhile the greedy family locks the heavy "
        "A5-B1 edge first (Figure 1(d))."
    )

    # The same API works on any graph you build yourself:
    graph = SimilarityGraph.from_edges(
        2, 2, [(0, 0, 0.92), (1, 1, 0.81), (0, 1, 0.30)]
    )
    result = matchers["UMC"].match(graph, threshold=0.5)
    print(f"\nCustom 2x2 graph with UMC: {result.pairs}")


if __name__ == "__main__":
    main()
