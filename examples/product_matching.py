"""Product matching: an Abt-Buy style end-to-end CCER pipeline.

The scenario the paper's introduction motivates: two online retailers
describe the same products differently (marketing titles, model
codes, missing attributes).  This example:

1. generates the d2 (Abt-Buy counterpart) dataset;
2. builds three similarity graphs of different families;
3. sweeps the similarity threshold for every algorithm;
4. prints the per-graph winner and the best overall configuration.

Run:  python examples/product_matching.py
"""

from __future__ import annotations

from repro.datasets import dataset_spec, generate_dataset
from repro.evaluation import threshold_sweep
from repro.evaluation.report import render_table
from repro.matching import paper_matchers
from repro.pipeline import compute_similarity_matrix, matrix_to_graph
from repro.pipeline.similarity_functions import SimilarityFunctionSpec


def build_graphs(dataset):
    """Three representative similarity functions, one per family."""
    specs = [
        SimilarityFunctionSpec(
            family="schema_based_syntactic",
            details={"attribute": "name", "measure": "jaro"},
            name="name/jaro",
        ),
        SimilarityFunctionSpec(
            family="schema_agnostic_syntactic",
            details={"model": "vector", "unit": "char", "n": 3,
                     "measure": "cosine_tfidf"},
            name="char3/cosine-tfidf",
        ),
        SimilarityFunctionSpec(
            family="schema_agnostic_semantic",
            details={"model": "fasttext_like", "measure": "cosine"},
            name="fasttext-like/cosine",
        ),
    ]
    graphs = {}
    for spec in specs:
        matrix = compute_similarity_matrix(dataset, spec)
        graphs[spec.name] = matrix_to_graph(matrix, name=spec.name)
    return graphs


def main() -> None:
    dataset = generate_dataset(dataset_spec("d2"), seed=42)
    print(
        f"Abt-Buy counterpart: {len(dataset.left)} x {len(dataset.right)} "
        f"products, {dataset.n_duplicates} true matches "
        f"(balanced collections)\n"
    )
    sample = dataset.left[0]
    print(f"Example left record:  {sample.attributes}")
    i, j = sorted(dataset.ground_truth)[0]
    print(f"Its counterpart:      {dataset.right[j].attributes}\n")

    graphs = build_graphs(dataset)
    matchers = paper_matchers(bah_max_moves=2_000, bah_time_limit=2.0)

    rows = []
    best = ("", "", 0.0, 0.0)
    for graph_name, graph in graphs.items():
        for code, matcher in matchers.items():
            sweep = threshold_sweep(matcher, graph, dataset.ground_truth)
            scores = sweep.best_scores
            rows.append(
                [
                    graph_name,
                    code,
                    f"{sweep.best_threshold:.2f}",
                    f"{scores.precision:.3f}",
                    f"{scores.recall:.3f}",
                    f"{scores.f_measure:.3f}",
                ]
            )
            if scores.f_measure > best[3]:
                best = (graph_name, code, sweep.best_threshold,
                        scores.f_measure)

    print(
        render_table(
            ["graph", "alg", "t*", "P", "R", "F1"],
            rows,
            title="Threshold-swept effectiveness per graph and algorithm",
        )
    )
    graph_name, code, threshold, f1 = best
    print(
        f"\nBest configuration: {code} on the {graph_name} graph "
        f"at t = {threshold:.2f} (F1 = {f1:.3f})"
    )


if __name__ == "__main__":
    main()
