"""Movie linkage at scale: scarce collections and the speed/quality axis.

An IMDb-TMDb style scenario (the paper's D5): two large movie
catalogues where only a minority of entries match ("scarce"
collections).  This example runs a miniature version of the paper's
efficiency study:

1. builds one similarity graph per size step (scaling the dataset);
2. times every algorithm at its optimal threshold;
3. prints the runtime-vs-size series (Figure 4 in miniature) and the
   F1/runtime trade-off (Figure 5 in miniature), including the exact
   Hungarian oracle the paper excludes for its cubic complexity.

Run:  python examples/movie_linkage.py
"""

from __future__ import annotations

import time

from repro.datasets import dataset_spec, generate_dataset
from repro.evaluation import threshold_sweep
from repro.evaluation.report import render_table
from repro.matching import create_matcher, paper_matchers
from repro.pipeline import compute_similarity_matrix, matrix_to_graph
from repro.pipeline.similarity_functions import SimilarityFunctionSpec

SIZE_STEPS = (0.02, 0.04, 0.08)

COSINE_SPEC = SimilarityFunctionSpec(
    family="schema_agnostic_syntactic",
    details={"model": "vector", "unit": "char", "n": 3,
             "measure": "cosine_tfidf"},
    name="char3 cosine tf-idf",
)


def build_graph(scale: float):
    dataset = generate_dataset(
        dataset_spec("d5", scale=scale, max_pairs=150_000), seed=42
    )
    matrix = compute_similarity_matrix(dataset, COSINE_SPEC)
    return dataset, matrix_to_graph(matrix)


def main() -> None:
    matchers = paper_matchers(bah_max_moves=2_000, bah_time_limit=2.0)

    print("Scalability (runtime in ms at the optimal threshold):")
    scalability_rows = []
    last = None
    for scale in SIZE_STEPS:
        dataset, graph = build_graph(scale)
        row: list[object] = [f"{graph.n_edges:,}"]
        for code, matcher in matchers.items():
            sweep = threshold_sweep(matcher, graph, dataset.ground_truth)
            row.append(f"{1000 * sweep.best_seconds:.1f}")
        scalability_rows.append(row)
        last = (dataset, graph)
    print(
        render_table(
            ["edges", *matchers.keys()],
            scalability_rows,
            title="Figure 4 in miniature (IMDb-TMDb counterpart)",
        )
    )

    dataset, graph = last
    print(
        f"\nTrade-off on the largest graph ({graph.n_edges:,} edges, "
        f"{dataset.n_duplicates} true matches):"
    )
    tradeoff_rows = []
    for code, matcher in matchers.items():
        sweep = threshold_sweep(matcher, graph, dataset.ground_truth)
        tradeoff_rows.append(
            [
                code,
                f"{sweep.best_scores.f_measure:.3f}",
                f"{1000 * sweep.best_seconds:.1f}",
                f"{sweep.best_threshold:.2f}",
            ]
        )
    # The exact oracle, for scale: cubic, but optimal in weight.
    hungarian = create_matcher("HUN")
    start = time.perf_counter()
    result = hungarian.match(graph, 0.5)
    elapsed = time.perf_counter() - start
    from repro.evaluation import evaluate_pairs

    scores = evaluate_pairs(result.pairs, dataset.ground_truth)
    tradeoff_rows.append(
        ["HUN*", f"{scores.f_measure:.3f}", f"{1000 * elapsed:.1f}", "0.50"]
    )
    print(
        render_table(
            ["alg", "F1", "ms", "t*"],
            tradeoff_rows,
            title="Figure 5 in miniature (* = exact oracle, excluded by "
                  "the paper)",
        )
    )


if __name__ == "__main__":
    main()
