"""Bibliographic linkage: DBLP-ACM style misplaced-value noise.

The paper singles out the bibliographic datasets (D4, D9) for their
*misplaced values* — author names leaking into titles — which defeat
schema-based similarity.  This example reproduces that finding: the
schema-based title graph loses to the schema-agnostic graph that sees
every attribute value, exactly the paper's explanation for D4.

It also demonstrates the statistical machinery: a Friedman/Nemenyi
analysis over the per-graph F1 samples of the eight algorithms.

Run:  python examples/publication_dedup.py
"""

from __future__ import annotations

import numpy as np

from repro.datasets import dataset_spec, generate_dataset
from repro.evaluation import threshold_sweep
from repro.evaluation.stats import friedman_test, nemenyi_diagram
from repro.matching import paper_matchers
from repro.matching.registry import PAPER_ALGORITHM_CODES
from repro.pipeline import compute_similarity_matrix, matrix_to_graph
from repro.pipeline.similarity_functions import (
    SimilarityFunctionSpec,
    enumerate_functions,
)


def main() -> None:
    dataset = generate_dataset(dataset_spec("d4"), seed=42)
    print(
        f"DBLP-ACM counterpart: {len(dataset.left)} x "
        f"{len(dataset.right)} publications, "
        f"{dataset.n_duplicates} true matches\n"
    )

    # --- The misplaced-value effect -------------------------------
    schema_based = SimilarityFunctionSpec(
        family="schema_based_syntactic",
        details={"attribute": "title", "measure": "cosine_tokens"},
        name="title-only cosine",
    )
    schema_agnostic = SimilarityFunctionSpec(
        family="schema_agnostic_syntactic",
        details={"model": "vector", "unit": "token", "n": 1,
                 "measure": "cosine_tfidf"},
        name="all-attributes cosine",
    )
    matchers = paper_matchers(bah_max_moves=1_000, bah_time_limit=2.0)
    umc = matchers["UMC"]
    for spec in (schema_based, schema_agnostic):
        graph = matrix_to_graph(compute_similarity_matrix(dataset, spec))
        sweep = threshold_sweep(umc, graph, dataset.ground_truth)
        print(
            f"UMC on {spec.name:>22}: F1 = "
            f"{sweep.best_scores.f_measure:.3f} "
            f"(t* = {sweep.best_threshold:.2f}, m = {graph.n_edges})"
        )
    print(
        "\nThe schema-agnostic graph absorbs the misplaced authors "
        "inherently\n(the paper's explanation for D4/D9).\n"
    )

    # --- Statistical comparison across many graphs ----------------
    specs = enumerate_functions(
        dataset,
        families=("schema_agnostic_syntactic",),
        ngram_models=(("char", 3), ("token", 1)),
    )
    scores = []
    for spec in specs:
        graph = matrix_to_graph(compute_similarity_matrix(dataset, spec))
        row = []
        for code in PAPER_ALGORITHM_CODES:
            sweep = threshold_sweep(
                matchers[code], graph, dataset.ground_truth
            )
            row.append(sweep.best_scores.f_measure)
        scores.append(row)
    scores = np.array(scores)

    result = friedman_test(scores)
    print(
        f"Friedman test over {len(specs)} schema-agnostic graphs: "
        f"chi2 = {result.statistic:.1f}, p = {result.p_value:.2e}, "
        f"significant = {result.rejected}"
    )
    print(nemenyi_diagram(list(PAPER_ALGORITHM_CODES), scores))


if __name__ == "__main__":
    main()
